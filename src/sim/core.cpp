#include "sim/core.hpp"

#include <algorithm>

namespace emprof::sim {

InOrderCore::InOrderCore(const SimConfig &config, TraceSource &trace,
                         MemoryHierarchy &hierarchy, GroundTruth &gt,
                         PowerModel &power, dsp::SampleSink power_sink)
    : config_(config),
      trace_(trace),
      hier_(hierarchy),
      gt_(gt),
      power_(power),
      powerSink_(std::move(power_sink)),
      prefetchDemandCycles_(config.prefetchDemandClassCycles()),
      refreshLabelCycles_(config.refreshLengthenedCycles())
{
    completionRing_.fill(0);
    pendingLoads_.reserve(config.core.maxOutstandingLoads + 1);
    storeBuffer_.reserve(config.core.storeBufferEntries + 1);
}

Cycle
InOrderCore::producerCompletion(uint16_t dist) const
{
    if (dist == 0 || static_cast<uint64_t>(dist) > issuedCount_ ||
        dist >= kRingSize) {
        return 0; // no producer in window: treat as ready
    }
    return completionRing_[(issuedCount_ - dist) % kRingSize];
}

void
InOrderCore::doFetch(Cycle now, ActivityCounters &activity)
{
    if (now < fetchReady_)
        return;
    fetchBlockIsLlcMiss_ = false;
    fetchBlockRefresh_ = false;
    fetchBlockDemandMiss_ = false;
    fetchBlockPrefetchMasked_ = false;
    fetchBlockLlcHitWait_ = false;
    fetchBlockRefreshDelay_ = 0;
    fetchBlockServiceCycles_ = 0;

    uint32_t fetched = 0;
    while (fetchBuffer_.size() < config_.core.fetchBufferOps &&
           fetched < config_.core.fetchWidth) {
        if (!havePendingFetchOp_) {
            if (!trace_.next(pendingFetchOp_)) {
                traceExhausted_ = true;
                break;
            }
            havePendingFetchOp_ = true;
        }

        const Addr line = hier_.l1i().lineAddr(pendingFetchOp_.pc);
        if (line != currentFetchLine_) {
            const auto outcome = hier_.fetchAccess(
                pendingFetchOp_.pc, now, pendingFetchOp_.phase);
            currentFetchLine_ = line;
            ++activity.l1Accesses;
            if (outcome.llcAccessed)
                ++activity.llcAccesses;
            if (outcome.completion > now + 1) {
                // I$ miss: fetch blocks until the line arrives.
                fetchReady_ = outcome.completion;
                fetchBlockIsLlcMiss_ = outcome.memoryStall;
                fetchBlockRefresh_ = outcome.refreshDelayed;
                fetchBlockDemandMiss_ = outcome.llcMiss;
                fetchBlockPrefetchMasked_ = outcome.prefetchMasked;
                fetchBlockLlcHitWait_ =
                    outcome.llcAccessed && !outcome.memoryStall;
                fetchBlockRefreshDelay_ = outcome.refreshDelayCycles;
                fetchBlockServiceCycles_ = outcome.serviceCycles;
                break;
            }
        }

        fetchBuffer_.push_back(pendingFetchOp_);
        havePendingFetchOp_ = false;
        ++fetched;
        ++activity.fetched;
    }
}

uint32_t
InOrderCore::doIssue(Cycle now, ActivityCounters &activity,
                     StallReason &reason)
{
    uint32_t issued = 0;
    reason = fetchBuffer_.empty() ? StallReason::FetchEmpty
                                  : StallReason::None;

    while (issued < config_.core.issueWidth && !fetchBuffer_.empty()) {
        const MicroOp &op = fetchBuffer_.front();

        // RAW dependence: in-order issue blocks behind it.
        if (op.depDist != 0 && producerCompletion(op.depDist) > now) {
            reason = StallReason::DataDep;
            break;
        }

        Cycle completion = now + 1;
        bool redirect = false;

        switch (op.cls) {
          case OpClass::IntAlu:
          case OpClass::Nop:
            completion = now + config_.core.aluLatency;
            ++activity.issuedAlu;
            break;
          case OpClass::IntMul:
            completion = now + config_.core.mulLatency;
            ++activity.issuedMul;
            break;
          case OpClass::IntDiv:
            if (divBusyUntil_ > now) {
                reason = StallReason::DivBusy;
                goto issue_done;
            }
            completion = now + config_.core.divLatency;
            divBusyUntil_ = completion;
            ++activity.issuedDiv;
            break;
          case OpClass::FpAlu:
            completion = now + config_.core.fpLatency;
            ++activity.issuedFp;
            break;
          case OpClass::Branch:
            completion = now + config_.core.aluLatency;
            ++activity.issuedBranch;
            if (op.taken)
                redirect = true;
            break;
          case OpClass::Load: {
            // A blocked memory unit (all miss slots busy) blocks any
            // further memory op in an in-order core.
            if (pendingLoads_.size() >= config_.core.maxOutstandingLoads) {
                reason = StallReason::LoadSlots;
                goto issue_done;
            }
            const auto outcome =
                hier_.dataAccess(op.pc, op.memAddr, false, now, op.phase);
            completion = outcome.completion;
            ++activity.issuedLoad;
            ++activity.l1Accesses;
            if (outcome.llcAccessed) {
                ++activity.llcAccesses;
                pendingLoads_.push_back({outcome.completion,
                                         outcome.memoryStall,
                                         outcome.refreshDelayed,
                                         outcome.llcMiss,
                                         outcome.prefetchMasked,
                                         outcome.refreshDelayCycles,
                                         outcome.serviceCycles});
            }
            break;
          }
          case OpClass::Store: {
            if (storeBuffer_.size() >= config_.core.storeBufferEntries) {
                reason = StallReason::StoreBuffer;
                goto issue_done;
            }
            const auto outcome =
                hier_.dataAccess(op.pc, op.memAddr, true, now, op.phase);
            // The store retires into the buffer immediately; the buffer
            // entry is held until the line is written.
            completion = now + 1;
            storeBuffer_.push_back(outcome.completion);
            ++activity.issuedStore;
            ++activity.l1Accesses;
            if (outcome.llcAccessed)
                ++activity.llcAccesses;
            break;
          }
        }

        completionRing_[issuedCount_ % kRingSize] = completion;
        ++issuedCount_;
        lastCompletion_ = std::max(lastCompletion_, completion);
        currentPhase_ = op.phase;
        gt_.onInstruction(op.phase);
        fetchBuffer_.pop_front();
        ++issued;

        if (redirect &&
            !rng_.chance(config_.core.branchPredictAccuracy)) {
            // Mispredicted taken branch: the front end re-steers.  The
            // ops already in the buffer are correct-path (the trace is
            // the executed path); the penalty models the redirect
            // bubble.  Predicted branches redirect for free.
            fetchReady_ = std::max(fetchReady_,
                                   now + config_.core.branchPenalty);
            currentFetchLine_ = ~0ull;
        }
    }

issue_done:
    if (issued > 0)
        reason = StallReason::None;
    return issued;
}

InOrderCore::RunResult
InOrderCore::run(Cycle max_cycles)
{
    Cycle now = 0;
    ActivityCounters activity;

    while (now < max_cycles) {
        activity.reset();

        // 1. Free completed resources.
        std::erase_if(pendingLoads_, [now](const PendingLoad &p) {
            return p.completion <= now;
        });
        std::erase_if(storeBuffer_,
                      [now](Cycle c) { return c <= now; });

        // 2. Fetch.
        doFetch(now, activity);

        // 3. Issue.
        StallReason reason = StallReason::None;
        const uint32_t issued = doIssue(now, activity, reason);

        // 4. Termination: everything drained and all results written.
        const bool drained = traceExhausted_ && fetchBuffer_.empty() &&
                             !havePendingFetchOp_ &&
                             pendingLoads_.empty() && storeBuffer_.empty();
        if (drained && now >= lastCompletion_)
            break;

        // 5. Stall accounting.
        if (issued == 0 && !drained) {
            stalls_[reason] += 1;

            uint32_t outstanding_llc = 0;
            bool refresh_any = false;
            bool llc_hit_wait = false;
            StallLevelFlags flags{false, false, false};
            // A prefetch residual as long as a real miss is labeled
            // demand-class; a refresh brush shorter than the labeling
            // threshold stays plain DRAM (see SimConfig::label).
            const auto classify = [&](bool demand, bool prefetch,
                                      Cycle refresh_delay,
                                      Cycle service) {
                if (demand) {
                    flags.demandMiss = true;
                    flags.refreshLengthened |=
                        refresh_delay >= refreshLabelCycles_;
                } else if (prefetch) {
                    if (service >= prefetchDemandCycles_)
                        flags.demandMiss = true;
                    else
                        flags.prefetchMasked = true;
                }
            };
            for (const auto &p : pendingLoads_) {
                if (p.completion <= now)
                    continue;
                if (p.memoryStall) {
                    ++outstanding_llc;
                    refresh_any |= p.refreshDelayed;
                    classify(p.demandMiss, p.prefetchMasked,
                             p.refreshDelayCycles, p.serviceCycles);
                } else {
                    llc_hit_wait = true;
                }
            }
            if (now < fetchReady_) {
                if (fetchBlockIsLlcMiss_) {
                    ++outstanding_llc;
                    refresh_any |= fetchBlockRefresh_;
                    classify(fetchBlockDemandMiss_,
                             fetchBlockPrefetchMasked_,
                             fetchBlockRefreshDelay_,
                             fetchBlockServiceCycles_);
                } else if (fetchBlockLlcHitWait_) {
                    llc_hit_wait = true;
                }
            }

            if (outstanding_llc > 0) {
                gt_.onMissStallCycle(now, outstanding_llc, refresh_any,
                                     currentPhase_, flags);
            } else if (llc_hit_wait) {
                gt_.onHitStallCycle(now, currentPhase_);
            } else {
                gt_.onOtherStallCycle();
            }
        }
        gt_.onCycle(currentPhase_);

        // 6. Power sample for this cycle.
        if (powerSink_)
            powerSink_(static_cast<dsp::Sample>(power_.sample(activity)));

        ++now;
    }

    hier_.memory().catchUpRefresh(now);
    gt_.finalize();

    RunResult result;
    result.cycles = now;
    result.instructions = issuedCount_;
    return result;
}

} // namespace emprof::sim
