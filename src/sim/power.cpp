#include "sim/power.hpp"

#include <algorithm>
#include <cmath>

namespace emprof::sim {

PowerModel::PowerModel(const PowerConfig &config)
    : config_(config), background_(config.backgroundNoise, config.seed)
{}

double
PowerModel::sample(const ActivityCounters &activity)
{
    double p = config_.staticPower;
    p += config_.fetchEnergy * activity.fetched;
    p += config_.aluEnergy * activity.issuedAlu;
    p += config_.mulEnergy * activity.issuedMul;
    p += config_.divEnergy * activity.issuedDiv;
    p += config_.fpEnergy * activity.issuedFp;
    p += config_.loadEnergy * activity.issuedLoad;
    p += config_.storeEnergy * activity.issuedStore;
    p += config_.branchEnergy * activity.issuedBranch;
    p += config_.l1Energy * activity.l1Accesses;
    p += config_.llcEnergy * activity.llcAccesses;

    if (config_.backgroundNoise > 0.0) {
        // Other cores / SoC blocks: absolute activity, never negative.
        p += std::abs(background_.real());
    }
    return p;
}

} // namespace emprof::sim
