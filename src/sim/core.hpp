/**
 * @file
 * Four-wide in-order superscalar core model.
 *
 * Models the IoT/hand-held class of cores the paper targets (Sec. II-B):
 * superscalar in-order issue with a scoreboard, stall-on-use for load
 * results, a small number of outstanding misses (bounded MLP), a store
 * buffer, and a redirect penalty for taken branches.  Every cycle it
 * reports unit activity to the power model — the fully-stalled cycles
 * during LLC misses are what produce the signal dips EMPROF detects.
 */

#ifndef EMPROF_SIM_CORE_HPP
#define EMPROF_SIM_CORE_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "sim/config.hpp"
#include "sim/ground_truth.hpp"
#include "sim/hierarchy.hpp"
#include "sim/power.hpp"
#include "sim/trace.hpp"

namespace emprof::sim {

/** Why issue made no progress in a cycle. */
enum class StallReason : uint8_t
{
    None,        ///< issued at least one op
    DataDep,     ///< RAW on an incomplete producer (usually a load)
    LoadSlots,   ///< outstanding-miss limit reached
    StoreBuffer, ///< store buffer full
    DivBusy,     ///< divider occupied
    FetchEmpty,  ///< nothing fetched (I$ miss or redirect)
    NumReasons,
};

/** Per-reason stalled-cycle counters. */
struct StallBreakdown
{
    std::array<uint64_t, static_cast<std::size_t>(
                             StallReason::NumReasons)>
        cycles{};

    uint64_t &
    operator[](StallReason r)
    {
        return cycles[static_cast<std::size_t>(r)];
    }

    uint64_t
    operator[](StallReason r) const
    {
        return cycles[static_cast<std::size_t>(r)];
    }
};

/**
 * The core timing model.
 */
class InOrderCore
{
  public:
    /** Outcome of a run. */
    struct RunResult
    {
        /** Total simulated cycles. */
        Cycle cycles = 0;

        /** Retired micro-ops. */
        uint64_t instructions = 0;
    };

    /**
     * @param config Full simulator configuration.
     * @param trace Dynamic op stream (not owned).
     * @param hierarchy Memory hierarchy (not owned).
     * @param gt Ground-truth recorder (not owned).
     * @param power Power model (not owned).
     * @param power_sink Called once per cycle with the power sample;
     *        may be empty.
     */
    InOrderCore(const SimConfig &config, TraceSource &trace,
                MemoryHierarchy &hierarchy, GroundTruth &gt,
                PowerModel &power, dsp::SampleSink power_sink);

    /**
     * Run until the trace drains (or @p max_cycles elapse).
     */
    RunResult run(Cycle max_cycles = kNoCycle);

    const StallBreakdown &stallBreakdown() const { return stalls_; }

  private:
    /** One outstanding L1-missing load. */
    struct PendingLoad
    {
        Cycle completion = 0;

        /** Waiting on DRAM (demand miss or in-flight prefetch). */
        bool memoryStall = false;

        bool refreshDelayed = false;

        /** A demand LLC miss (vs. prefetch residual / LLC hit). */
        bool demandMiss = false;

        /** Residual of an in-flight prefetch (memoryStall only). */
        bool prefetchMasked = false;

        /** Cycles the fill queued behind a DRAM refresh window. */
        Cycle refreshDelayCycles = 0;

        /** Memory-path service time, for level labeling. */
        Cycle serviceCycles = 0;
    };

    /** Try to fetch ops into the fetch buffer. */
    void doFetch(Cycle now, ActivityCounters &activity);

    /** Try to issue ops from the fetch buffer; returns #issued. */
    uint32_t doIssue(Cycle now, ActivityCounters &activity,
                     StallReason &reason);

    /** Completion cycle of the producer at dynamic distance dist. */
    Cycle producerCompletion(uint16_t dist) const;

    static constexpr std::size_t kRingSize = 256; // power of two

    SimConfig config_;
    TraceSource &trace_;
    MemoryHierarchy &hier_;
    GroundTruth &gt_;
    PowerModel &power_;
    dsp::SampleSink powerSink_;

    std::deque<MicroOp> fetchBuffer_;
    MicroOp pendingFetchOp_{};
    bool havePendingFetchOp_ = false;
    bool traceExhausted_ = false;

    Cycle fetchReady_ = 0;
    bool fetchBlockIsLlcMiss_ = false;
    bool fetchBlockRefresh_ = false;
    bool fetchBlockDemandMiss_ = false;
    bool fetchBlockPrefetchMasked_ = false;
    bool fetchBlockLlcHitWait_ = false;
    Cycle fetchBlockRefreshDelay_ = 0;
    Cycle fetchBlockServiceCycles_ = 0;
    Addr currentFetchLine_ = ~0ull;

    std::array<Cycle, kRingSize> completionRing_{};
    uint64_t issuedCount_ = 0;

    /** Resolved labeling thresholds (SimConfig::label). */
    Cycle prefetchDemandCycles_ = 0;
    Cycle refreshLabelCycles_ = 0;

    std::vector<PendingLoad> pendingLoads_;
    std::vector<Cycle> storeBuffer_;
    Cycle divBusyUntil_ = 0;
    Cycle lastCompletion_ = 0;
    uint8_t currentPhase_ = 0;
    dsp::Rng rng_{0xB4A2C4ull};

    StallBreakdown stalls_;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_CORE_HPP
