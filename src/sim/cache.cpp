#include "sim/cache.hpp"

#include <bit>
#include <cassert>

namespace emprof::sim {

Cache::Cache(const CacheConfig &config, uint64_t seed)
    : config_(config), rng_(seed)
{
    assert(std::has_single_bit(static_cast<uint64_t>(config.lineBytes)));
    numSets_ = config.numSets();
    assert(numSets_ >= 1);
    lineShift_ = static_cast<uint32_t>(
        std::countr_zero(static_cast<uint64_t>(config.lineBytes)));
    lineMask_ = config.lineBytes - 1;
    ways_.resize(numSets_ * config.assoc);
}

uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) % numSets_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr >> lineShift_) / numSets_;
}

bool
Cache::probe(Addr addr) const
{
    const uint64_t base = setIndex(addr) * config_.assoc;
    const Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

std::size_t
Cache::pickVictim(std::size_t set_base)
{
    // Prefer an invalid way.
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        if (!ways_[set_base + w].valid)
            return set_base + w;
    }
    if (config_.replacement == Replacement::Random)
        return set_base + rng_.below(config_.assoc);

    // LRU
    std::size_t victim = set_base;
    uint64_t oldest = ways_[set_base].lastUse;
    for (uint32_t w = 1; w < config_.assoc; ++w) {
        if (ways_[set_base + w].lastUse < oldest) {
            oldest = ways_[set_base + w].lastUse;
            victim = set_base + w;
        }
    }
    return victim;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult result;
    const uint64_t base = setIndex(addr) * config_.assoc;
    const Addr tag = tagOf(addr);
    ++useCounter_;

    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useCounter_;
            way.dirty = way.dirty || is_write;
            result.hit = true;
            ++stats_.hits;
            return result;
        }
    }

    ++stats_.misses;
    const std::size_t victim = pickVictim(base);
    Way &way = ways_[victim];
    if (way.valid && way.dirty) {
        result.dirtyEviction = true;
        // Reconstruct the victim's line address from its tag and set.
        const uint64_t set = setIndex(addr);
        result.victimLine = ((way.tag * numSets_ + set) << lineShift_);
    }
    way.valid = true;
    way.tag = tag;
    way.lastUse = useCounter_;
    way.dirty = is_write;
    return result;
}

CacheAccessResult
Cache::insert(Addr addr)
{
    CacheAccessResult result;
    const uint64_t base = setIndex(addr) * config_.assoc;
    const Addr tag = tagOf(addr);

    // Already present: nothing to do.
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            result.hit = true;
            return result;
        }
    }

    ++useCounter_;
    const std::size_t victim = pickVictim(base);
    Way &way = ways_[victim];
    if (way.valid && way.dirty) {
        result.dirtyEviction = true;
        const uint64_t set = setIndex(addr);
        result.victimLine = ((way.tag * numSets_ + set) << lineShift_);
    }
    way.valid = true;
    way.tag = tag;
    way.lastUse = useCounter_;
    way.dirty = false;
    return result;
}

void
Cache::flush()
{
    for (auto &way : ways_) {
        way.valid = false;
        way.dirty = false;
    }
}

bool
Cache::invalidate(Addr addr)
{
    const uint64_t base = setIndex(addr) * config_.assoc;
    const Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.valid = false;
            way.dirty = false;
            return true;
        }
    }
    return false;
}

} // namespace emprof::sim
