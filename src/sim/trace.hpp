/**
 * @file
 * Dynamic-trace abstraction: how workloads feed the core.
 *
 * Runs reach hundreds of millions of micro-ops, so traces are never
 * materialised whole.  Workloads implement ChunkedTraceSource and
 * append one bounded chunk (typically one outer-loop iteration) per
 * refill() call; the core pulls ops one at a time.
 */

#ifndef EMPROF_SIM_TRACE_HPP
#define EMPROF_SIM_TRACE_HPP

#include <cstddef>
#include <vector>

#include "sim/isa.hpp"

namespace emprof::sim {

/** Pull interface the core consumes. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fetch the next dynamic op.
     *
     * @param op Receives the op when available.
     * @retval false The trace is exhausted.
     */
    virtual bool next(MicroOp &op) = 0;
};

/**
 * Base class for generator-style workloads.
 *
 * Derived classes override refill() and append a bounded number of ops
 * to the buffer each call; returning without appending anything ends
 * the trace.
 */
class ChunkedTraceSource : public TraceSource
{
  public:
    bool
    next(MicroOp &op) override
    {
        if (cursor_ >= buffer_.size()) {
            buffer_.clear();
            cursor_ = 0;
            refill(buffer_);
            if (buffer_.empty())
                return false;
        }
        op = buffer_[cursor_++];
        return true;
    }

  protected:
    /** Append the next chunk of ops; append nothing to end the trace. */
    virtual void refill(std::vector<MicroOp> &out) = 0;

  private:
    std::vector<MicroOp> buffer_;
    std::size_t cursor_ = 0;
};

/** Trace backed by a pre-built vector — mainly for unit tests. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<MicroOp> ops)
        : ops_(std::move(ops))
    {}

    bool
    next(MicroOp &op) override
    {
        if (cursor_ >= ops_.size())
            return false;
        op = ops_[cursor_++];
        return true;
    }

    /** Restart from the beginning (tests reuse one trace). */
    void rewind() { cursor_ = 0; }

  private:
    std::vector<MicroOp> ops_;
    std::size_t cursor_ = 0;
};

/** Concatenate several traces back to back. */
class ConcatTraceSource : public TraceSource
{
  public:
    /** Takes non-owning pointers; all must outlive this object. */
    explicit ConcatTraceSource(std::vector<TraceSource *> parts)
        : parts_(std::move(parts))
    {}

    bool
    next(MicroOp &op) override
    {
        while (index_ < parts_.size()) {
            if (parts_[index_]->next(op))
                return true;
            ++index_;
        }
        return false;
    }

  private:
    std::vector<TraceSource *> parts_;
    std::size_t index_ = 0;
};

} // namespace emprof::sim

#endif // EMPROF_SIM_TRACE_HPP
