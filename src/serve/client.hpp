/**
 * @file
 * Client side of the EMFR protocol: connect, push one EMCAP capture,
 * collect the Report — the code path shared by `emprof_capture
 * --push`, the served-equivalence tests and the load generator.
 *
 * Endpoints are spelled like the daemon's --listen flag:
 *
 *     unix:/run/emprof.sock      unix-domain socket
 *     tcp:127.0.0.1:7600         TCP (host:port)
 *     /run/emprof.sock           bare path = unix
 *
 * Uploads are cut into Data frames of uploadChunkBytes; the cut is
 * arbitrary by design (the server reassembles a byte stream), which
 * the equivalence tests exploit by pushing the same capture in wildly
 * different framings and asserting bit-identical reports.
 */

#ifndef EMPROF_SERVE_CLIENT_HPP
#define EMPROF_SERVE_CLIENT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/frame.hpp"

namespace emprof::serve {

/** Parsed --listen / --push endpoint. */
struct Endpoint
{
    bool tcp = false;
    std::string unixPath; ///< when !tcp
    std::string host;     ///< when tcp
    int port = 0;         ///< when tcp
};

/** Parse an endpoint spec; false + reason when unintelligible. */
bool parseEndpoint(const std::string &spec, Endpoint &out,
                   std::string *error = nullptr);

/** Outcome of one pushed session. */
struct PushResult
{
    bool ok = false;          ///< Report received (status may be 3)
    DecodedReport report;     ///< valid when ok
    ErrorCode errorCode =     ///< valid when !ok and the server spoke
        ErrorCode::Internal;
    std::string error;        ///< human-readable failure reason
};

class Client
{
  public:
    ~Client() { close(); }

    /** Connect to @p endpoint; false + reason on failure. */
    bool connect(const Endpoint &endpoint,
                 std::string *error = nullptr);

    void close();

    bool connected() const { return fd_ >= 0; }

    /**
     * Run one full session over the open connection: Open (with
     * @p resilient mapped to kOpenResilient), the capture bytes in
     * Data frames of @p uploadChunkBytes, Finish, then block for the
     * Report/Error.  The connection is closed afterwards either way.
     */
    PushResult push(const uint8_t *capture, std::size_t bytes,
                    bool resilient = false,
                    std::size_t uploadChunkBytes = 256 * 1024);

    /**
     * Low-level session steps, for callers that interleave uploads
     * with other work (the load generator paces Data frames itself).
     */
    bool open(bool resilient, std::string *error = nullptr);
    bool sendData(const uint8_t *data, std::size_t bytes,
                  std::string *error = nullptr);
    PushResult finish();

    /** Fetch the server's text metrics scrape (StatsRequest). */
    static bool scrape(const Endpoint &endpoint, std::string &text,
                       std::string *error = nullptr);

  private:
    void adoptPendingError(PushResult &result);

    int fd_ = -1;
};

/** Convenience: connect + push a capture file's bytes in one call. */
PushResult pushCapture(const Endpoint &endpoint,
                       const std::string &capturePath,
                       bool resilient = false,
                       std::size_t uploadChunkBytes = 256 * 1024);

} // namespace emprof::serve

#endif // EMPROF_SERVE_CLIENT_HPP
