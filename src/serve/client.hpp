/**
 * @file
 * Client side of the EMFR protocol: connect, push one EMCAP capture,
 * collect the Report — the code path shared by `emprof_capture
 * --push`, the served-equivalence tests and the load generator.
 *
 * Endpoints are spelled like the daemon's --listen flag:
 *
 *     unix:/run/emprof.sock      unix-domain socket
 *     tcp:127.0.0.1:7600         TCP (host:port)
 *     /run/emprof.sock           bare path = unix
 *
 * Uploads are cut into Data frames of uploadChunkBytes; the cut is
 * arbitrary by design (the server reassembles a byte stream), which
 * the equivalence tests exploit by pushing the same capture in wildly
 * different framings and asserting bit-identical reports.
 */

#ifndef EMPROF_SERVE_CLIENT_HPP
#define EMPROF_SERVE_CLIENT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/frame.hpp"

namespace emprof::serve {

/** Parsed --listen / --push endpoint. */
struct Endpoint
{
    bool tcp = false;
    std::string unixPath; ///< when !tcp
    std::string host;     ///< when tcp
    int port = 0;         ///< when tcp
};

/** Parse an endpoint spec; false + reason when unintelligible. */
bool parseEndpoint(const std::string &spec, Endpoint &out,
                   std::string *error = nullptr);

/** Outcome of one pushed session. */
struct PushResult
{
    bool ok = false;          ///< Report received (status may be 3)
    DecodedReport report;     ///< valid when ok
    ErrorCode errorCode =     ///< valid when !ok and the server spoke
        ErrorCode::Internal;
    std::string error;        ///< human-readable failure reason

    /** The failure (if any) was the transport dying — the class a
     *  resumable push retries; maps to exit code 7 in the tools. */
    bool connectionLost = false;
    /** Server-suggested backoff from a RetryAfter rejection (ms);
     *  0 when the server sent no hint. */
    uint32_t retryAfterMs = 0;
    uint32_t attempts = 0;    ///< connections made (resumable push)
    uint32_t resumes = 0;     ///< OpenAcks answered Resumed
    uint64_t replayedBytes = 0; ///< bytes re-sent after reconnects
    bool servedFromSpool = false; ///< OpenAck Complete: spool replay
    SessionId sessionId{};    ///< id echoed by the server (v2)
};

/** Knobs for the reconnecting push (emprof_capture/served --push). */
struct PushOptions
{
    bool resilient = false;
    std::size_t uploadChunkBytes = 256 * 1024;

    /** Total connection attempts (first try included); 1 disables
     *  the retry loop entirely. */
    uint32_t maxAttempts = 3;
    uint32_t backoffBaseMs = 50; ///< doubled per retry, jittered
    uint32_t backoffMaxMs = 2000;
    uint64_t jitterSeed = 0; ///< 0 = nondeterministic

    /** Bench/test hook: hard-close the socket once, after this many
     *  capture bytes have been sent (0 = never).  Exercises the real
     *  reconnect-and-resume path deterministically. */
    uint64_t simulateDropAfterBytes = 0;
};

class Client
{
  public:
    ~Client() { close(); }

    /** Connect to @p endpoint; false + reason on failure. */
    bool connect(const Endpoint &endpoint,
                 std::string *error = nullptr);

    void close();

    bool connected() const { return fd_ >= 0; }

    /** Hand the connected fd to the caller (the chaos harness drives
     *  the socket by hand); the Client forgets it. */
    int releaseFd()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /**
     * Run one full session over the open connection: Open (with
     * @p resilient mapped to kOpenResilient), the capture bytes in
     * Data frames of @p uploadChunkBytes, Finish, then block for the
     * Report/Error.  The connection is closed afterwards either way.
     */
    PushResult push(const uint8_t *capture, std::size_t bytes,
                    bool resilient = false,
                    std::size_t uploadChunkBytes = 256 * 1024);

    /**
     * Resumable push: like push(), but survives the connection dying
     * under it.  Reconnects (with jittered exponential backoff) up to
     * options.maxAttempts times, re-attaching to the same session id
     * so the server's parked pipeline continues from its durable
     * offset — or, when the session already finished, collecting the
     * spooled Report.  Retries only transport deaths and Busy; typed
     * protocol rejections (Malformed, BadResume, ...) fail fast.
     */
    PushResult pushResumable(const Endpoint &endpoint,
                             const uint8_t *capture, std::size_t bytes,
                             const PushOptions &options);

    /**
     * Low-level session steps, for callers that interleave uploads
     * with other work (the load generator paces Data frames itself).
     */
    bool open(bool resilient, std::string *error = nullptr);

    /**
     * Full v2 handshake: write @p request, block for the OpenAck (or
     * a typed Error, reported through @p errorCode + @p error).  On
     * success @p id / @p resumeOffset / @p state carry the server's
     * answer; state == Complete means a Report frame follows.
     */
    bool openSession(const OpenRequest &request, SessionId &id,
                     uint64_t &resumeOffset, SessionState &state,
                     ErrorCode *errorCode = nullptr,
                     std::string *error = nullptr,
                     bool *connectionLost = nullptr,
                     uint32_t *retryAfterMs = nullptr);

    bool sendData(const uint8_t *data, std::size_t bytes,
                  std::string *error = nullptr,
                  bool *connectionLost = nullptr);
    PushResult finish();

    /** Fetch the server's text metrics scrape (StatsRequest). */
    static bool scrape(const Endpoint &endpoint, std::string &text,
                       std::string *error = nullptr);

    /** One-byte liveness probe (v4 HealthRequest): classify the
     *  server without opening a session.  False + reason when the
     *  endpoint is unreachable or answers garbage. */
    static bool health(const Endpoint &endpoint, HealthState &state,
                       std::string *error = nullptr);

  private:
    void adoptPendingError(PushResult &result);

    int fd_ = -1;
};

/** Convenience: connect + push a capture file's bytes in one call. */
PushResult pushCapture(const Endpoint &endpoint,
                       const std::string &capturePath,
                       bool resilient = false,
                       std::size_t uploadChunkBytes = 256 * 1024);

/** Convenience: read a capture file and push it resumably. */
PushResult pushCaptureResumable(const Endpoint &endpoint,
                                const std::string &capturePath,
                                const PushOptions &options);

} // namespace emprof::serve

#endif // EMPROF_SERVE_CLIENT_HPP
