#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace emprof::serve {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

bool
parseEndpoint(const std::string &spec, Endpoint &out,
              std::string *error)
{
    if (spec.empty())
        return fail(error, "empty endpoint");
    if (spec.rfind("unix:", 0) == 0) {
        out.tcp = false;
        out.unixPath = spec.substr(5);
        if (out.unixPath.empty())
            return fail(error, "unix endpoint needs a path");
        return true;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const auto colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size())
            return fail(error,
                        "tcp endpoint must be tcp:host:port, got '" +
                            spec + "'");
        out.tcp = true;
        out.host = rest.substr(0, colon);
        try {
            out.port = std::stoi(rest.substr(colon + 1));
        } catch (...) {
            return fail(error, "bad tcp port in '" + spec + "'");
        }
        if (out.port <= 0 || out.port > 65535)
            return fail(error, "tcp port out of range in '" + spec +
                                   "'");
        return true;
    }
    // A bare path is a unix socket — the common daemon case.
    out.tcp = false;
    out.unixPath = spec;
    return true;
}

bool
Client::connect(const Endpoint &endpoint, std::string *error)
{
    close();
    if (!endpoint.tcp) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.unixPath.size() >= sizeof(addr.sun_path))
            return fail(error, "unix socket path too long");
        std::strncpy(addr.sun_path, endpoint.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return fail(error, std::string("socket failed: ") +
                                   std::strerror(errno));
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const int e = errno;
            close();
            return fail(error, "cannot connect to " +
                                   endpoint.unixPath + ": " +
                                   std::strerror(e));
        }
        return true;
    }

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc =
        ::getaddrinfo(endpoint.host.c_str(),
                      std::to_string(endpoint.port).c_str(), &hints,
                      &res);
    if (rc != 0 || res == nullptr)
        return fail(error, "cannot resolve " + endpoint.host + ": " +
                               ::gai_strerror(rc));
    fd_ = ::socket(res->ai_family, res->ai_socktype,
                   res->ai_protocol);
    if (fd_ < 0) {
        ::freeaddrinfo(res);
        return fail(error, std::string("socket failed: ") +
                               std::strerror(errno));
    }
    if (::connect(fd_, res->ai_addr, res->ai_addrlen) != 0) {
        const int e = errno;
        ::freeaddrinfo(res);
        close();
        return fail(error, "cannot connect to " + endpoint.host + ":" +
                               std::to_string(endpoint.port) + ": " +
                               std::strerror(e));
    }
    ::freeaddrinfo(res);
    return true;
}

void
Client::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
Client::open(bool resilient, std::string *error)
{
    if (fd_ < 0)
        return fail(error, "not connected");
    OpenRequest req{};
    req.flags = resilient ? kOpenResilient : 0;
    return writeFrame(fd_, FrameType::Open, &req, sizeof(req), error);
}

bool
Client::sendData(const uint8_t *data, std::size_t bytes,
                 std::string *error)
{
    if (fd_ < 0)
        return fail(error, "not connected");
    return writeFrame(fd_, FrameType::Data, data, bytes, error);
}

/**
 * A write that fails mid-session usually means the server already
 * rejected the session, queued a typed Error frame, and closed its
 * end — the rejection is sitting in our receive buffer.  Surface it
 * instead of the opaque EPIPE.  The peer's end is closed, so the read
 * terminates immediately with either the frame or EOF.
 */
void
Client::adoptPendingError(PushResult &result)
{
    if (fd_ < 0)
        return;
    Frame reply;
    std::string ignored;
    if (readFrame(fd_, reply, &ignored) &&
        reply.type == FrameType::Error)
        decodeErrorPayload(reply.payload, result.errorCode,
                           result.error);
}

PushResult
Client::finish()
{
    PushResult result;
    std::string error;
    if (fd_ < 0) {
        result.error = "not connected";
        return result;
    }
    if (!writeFrame(fd_, FrameType::Finish, nullptr, 0, &error)) {
        result.error = error;
        adoptPendingError(result);
        close();
        return result;
    }
    Frame reply;
    if (!readFrame(fd_, reply, &error)) {
        result.error = error;
        close();
        return result;
    }
    close();
    if (reply.type == FrameType::Error) {
        decodeErrorPayload(reply.payload, result.errorCode,
                           result.error);
        return result;
    }
    if (reply.type != FrameType::Report) {
        result.error = "unexpected reply frame from server";
        return result;
    }
    if (!decodeReportPayload(reply.payload, result.report, &error)) {
        result.error = error;
        return result;
    }
    result.ok = true;
    return result;
}

PushResult
Client::push(const uint8_t *capture, std::size_t bytes, bool resilient,
             std::size_t uploadChunkBytes)
{
    PushResult result;
    std::string error;
    if (uploadChunkBytes == 0 || uploadChunkBytes > kMaxFramePayload)
        uploadChunkBytes = kMaxFramePayload;
    if (!open(resilient, &error)) {
        result.error = error;
        close();
        return result;
    }
    for (std::size_t off = 0; off < bytes;) {
        const std::size_t take =
            std::min(uploadChunkBytes, bytes - off);
        if (!sendData(capture + off, take, &error)) {
            result.error = error;
            adoptPendingError(result);
            close();
            return result;
        }
        off += take;
    }
    return finish();
}

bool
Client::scrape(const Endpoint &endpoint, std::string &text,
               std::string *error)
{
    Client client;
    if (!client.connect(endpoint, error))
        return false;
    if (!writeFrame(client.fd_, FrameType::StatsRequest, nullptr, 0,
                    error))
        return false;
    Frame reply;
    if (!readFrame(client.fd_, reply, error))
        return false;
    if (reply.type != FrameType::Stats)
        return fail(error, "unexpected reply to StatsRequest");
    text.assign(reply.payload.begin(), reply.payload.end());
    return true;
}

PushResult
pushCapture(const Endpoint &endpoint, const std::string &capturePath,
            bool resilient, std::size_t uploadChunkBytes)
{
    PushResult result;
    std::ifstream in(capturePath, std::ios::binary);
    if (!in) {
        result.error = "cannot open " + capturePath;
        return result;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    Client client;
    std::string error;
    if (!client.connect(endpoint, &error)) {
        result.error = error;
        return result;
    }
    return client.push(bytes.data(), bytes.size(), resilient,
                       uploadChunkBytes);
}

} // namespace emprof::serve
