#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <random>
#include <thread>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace emprof::serve {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

bool
parseEndpoint(const std::string &spec, Endpoint &out,
              std::string *error)
{
    if (spec.empty())
        return fail(error, "empty endpoint");
    if (spec.rfind("unix:", 0) == 0) {
        out.tcp = false;
        out.unixPath = spec.substr(5);
        if (out.unixPath.empty())
            return fail(error, "unix endpoint needs a path");
        return true;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const auto colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size())
            return fail(error,
                        "tcp endpoint must be tcp:host:port, got '" +
                            spec + "'");
        out.tcp = true;
        out.host = rest.substr(0, colon);
        try {
            out.port = std::stoi(rest.substr(colon + 1));
        } catch (...) {
            return fail(error, "bad tcp port in '" + spec + "'");
        }
        if (out.port <= 0 || out.port > 65535)
            return fail(error, "tcp port out of range in '" + spec +
                                   "'");
        return true;
    }
    // A bare path is a unix socket — the common daemon case.
    out.tcp = false;
    out.unixPath = spec;
    return true;
}

bool
Client::connect(const Endpoint &endpoint, std::string *error)
{
    close();
    if (!endpoint.tcp) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.unixPath.size() >= sizeof(addr.sun_path))
            return fail(error, "unix socket path too long");
        std::strncpy(addr.sun_path, endpoint.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return fail(error, std::string("socket failed: ") +
                                   std::strerror(errno));
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const int e = errno;
            close();
            return fail(error, "cannot connect to " +
                                   endpoint.unixPath + ": " +
                                   std::strerror(e));
        }
        return true;
    }

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc =
        ::getaddrinfo(endpoint.host.c_str(),
                      std::to_string(endpoint.port).c_str(), &hints,
                      &res);
    if (rc != 0 || res == nullptr)
        return fail(error, "cannot resolve " + endpoint.host + ": " +
                               ::gai_strerror(rc));
    fd_ = ::socket(res->ai_family, res->ai_socktype,
                   res->ai_protocol);
    if (fd_ < 0) {
        ::freeaddrinfo(res);
        return fail(error, std::string("socket failed: ") +
                               std::strerror(errno));
    }
    if (::connect(fd_, res->ai_addr, res->ai_addrlen) != 0) {
        const int e = errno;
        ::freeaddrinfo(res);
        close();
        return fail(error, "cannot connect to " + endpoint.host + ":" +
                               std::to_string(endpoint.port) + ": " +
                               std::strerror(e));
    }
    ::freeaddrinfo(res);
    return true;
}

void
Client::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
Client::open(bool resilient, std::string *error)
{
    OpenRequest req{};
    req.flags = resilient ? kOpenResilient : 0;
    SessionId id{};
    uint64_t resume_offset = 0;
    SessionState state = SessionState::Fresh;
    return openSession(req, id, resume_offset, state, nullptr, error);
}

bool
Client::openSession(const OpenRequest &request, SessionId &id,
                    uint64_t &resumeOffset, SessionState &state,
                    ErrorCode *errorCode, std::string *error,
                    bool *connectionLost, uint32_t *retryAfterMs)
{
    if (retryAfterMs != nullptr)
        *retryAfterMs = 0;
    if (fd_ < 0)
        return fail(error, "not connected");
    if (!writeFrame(fd_, FrameType::Open, &request, sizeof(request),
                    error, connectionLost))
        return false;
    Frame reply;
    if (!readFrame(fd_, reply, error, kMaxFramePayload,
                   connectionLost))
        return false;
    if (reply.type == FrameType::Error) {
        ErrorCode code = ErrorCode::Internal;
        std::string message;
        decodeErrorPayload(reply.payload, code, message, retryAfterMs);
        if (errorCode != nullptr)
            *errorCode = code;
        return fail(error, message);
    }
    if (reply.type != FrameType::OpenAck)
        return fail(error, "unexpected reply to Open");
    return decodeOpenAckPayload(reply.payload, id, resumeOffset,
                                state, error);
}

bool
Client::sendData(const uint8_t *data, std::size_t bytes,
                 std::string *error, bool *connectionLost)
{
    if (fd_ < 0)
        return fail(error, "not connected");
    return writeFrame(fd_, FrameType::Data, data, bytes, error,
                      connectionLost);
}

/**
 * A write that fails mid-session usually means the server already
 * rejected the session, queued a typed Error frame, and closed its
 * end — the rejection is sitting in our receive buffer.  Surface it
 * instead of the opaque EPIPE.  The peer's end is closed, so the read
 * terminates immediately with either the frame or EOF.
 */
void
Client::adoptPendingError(PushResult &result)
{
    if (fd_ < 0)
        return;
    Frame reply;
    std::string ignored;
    if (readFrame(fd_, reply, &ignored) &&
        reply.type == FrameType::Error) {
        decodeErrorPayload(reply.payload, result.errorCode,
                           result.error, &result.retryAfterMs);
        // A typed rejection beat the hangup: this is a protocol
        // failure, not a transport death — do not retry it.
        result.connectionLost = false;
    }
}

PushResult
Client::finish()
{
    PushResult result;
    std::string error;
    if (fd_ < 0) {
        result.error = "not connected";
        return result;
    }
    bool lost = false;
    if (!writeFrame(fd_, FrameType::Finish, nullptr, 0, &error,
                    &lost)) {
        result.error = error;
        result.connectionLost = lost;
        adoptPendingError(result);
        close();
        return result;
    }
    Frame reply;
    if (!readFrame(fd_, reply, &error, kMaxFramePayload, &lost)) {
        result.error = error;
        result.connectionLost = lost;
        close();
        return result;
    }
    close();
    if (reply.type == FrameType::Error) {
        decodeErrorPayload(reply.payload, result.errorCode,
                           result.error, &result.retryAfterMs);
        return result;
    }
    if (reply.type != FrameType::Report) {
        result.error = "unexpected reply frame from server";
        return result;
    }
    if (!decodeReportPayload(reply.payload, result.report, &error)) {
        result.error = error;
        return result;
    }
    result.ok = true;
    return result;
}

PushResult
Client::push(const uint8_t *capture, std::size_t bytes, bool resilient,
             std::size_t uploadChunkBytes)
{
    PushResult result;
    std::string error;
    if (uploadChunkBytes == 0 || uploadChunkBytes > kMaxFramePayload)
        uploadChunkBytes = kMaxFramePayload;
    OpenRequest req{};
    req.flags = resilient ? kOpenResilient : 0;
    uint64_t resume_offset = 0;
    SessionState state = SessionState::Fresh;
    bool lost = false;
    if (!openSession(req, result.sessionId, resume_offset, state,
                     &result.errorCode, &error, &lost)) {
        result.error = error;
        result.connectionLost = lost;
        close();
        return result;
    }
    for (std::size_t off = 0; off < bytes;) {
        const std::size_t take =
            std::min(uploadChunkBytes, bytes - off);
        if (!sendData(capture + off, take, &error, &lost)) {
            result.error = error;
            result.connectionLost = lost;
            adoptPendingError(result);
            close();
            return result;
        }
        off += take;
    }
    const SessionId id = result.sessionId;
    result = finish();
    result.sessionId = id;
    return result;
}

PushResult
Client::pushResumable(const Endpoint &endpoint, const uint8_t *capture,
                      std::size_t bytes, const PushOptions &options)
{
    PushResult result;
    std::size_t chunk = options.uploadChunkBytes;
    if (chunk == 0 || chunk > kMaxFramePayload)
        chunk = kMaxFramePayload;
    const uint32_t max_attempts = std::max(1u, options.maxAttempts);

    std::mt19937_64 rng(options.jitterSeed != 0
                            ? options.jitterSeed
                            : std::random_device{}());
    SessionId id{};
    bool have_id = false;
    bool dropped = false; ///< the simulated drop fired already
    uint64_t sent_high_water = 0;
    uint32_t server_hint_ms = 0; ///< last RetryAfter backoff hint

    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
            // Jittered exponential backoff: base * 2^(retries-1),
            // capped, scaled by a uniform [0.5, 1.5) factor so a
            // fleet of droppped clients does not reconnect in phase.
            uint64_t delay = options.backoffBaseMs;
            for (uint32_t i = 2; i < attempt && delay < options.backoffMaxMs; ++i)
                delay *= 2;
            delay = std::min<uint64_t>(delay, options.backoffMaxMs);
            std::uniform_real_distribution<double> jitter(0.5, 1.5);
            delay = static_cast<uint64_t>(
                static_cast<double>(delay) * jitter(rng));
            if (server_hint_ms > 0) {
                // The server told us how loaded it is; honor the
                // larger of its hint (mildly jittered so the fleet
                // spreads) and our own schedule.
                std::uniform_real_distribution<double> spread(1.0, 1.25);
                const uint64_t hinted = static_cast<uint64_t>(
                    static_cast<double>(server_hint_ms) * spread(rng));
                delay = std::max(delay, hinted);
                server_hint_ms = 0;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }

        ++result.attempts;
        std::string error;
        if (!connect(endpoint, &error)) {
            result.error = error;
            result.connectionLost = true;
            continue; // the daemon may be restarting; back off
        }

        OpenRequest req{};
        req.flags = (options.resilient ? kOpenResilient : 0u) |
                    (have_id ? kOpenResume : 0u);
        if (have_id)
            std::memcpy(req.sessionId, id.data(), id.size());
        req.resumeFrom = have_id ? kResumeQuery : 0;

        uint64_t resume_offset = 0;
        SessionState state = SessionState::Fresh;
        bool lost = false;
        result.errorCode = ErrorCode::Internal;
        uint32_t hint_ms = 0;
        if (!openSession(req, id, resume_offset, state,
                         &result.errorCode, &error, &lost, &hint_ms)) {
            result.error = error;
            result.connectionLost = lost;
            close();
            if (result.errorCode == ErrorCode::RetryAfter) {
                // Load shed with a backoff hint: retriable, at the
                // server's suggested pace.
                result.retryAfterMs = hint_ms;
                server_hint_ms = hint_ms;
                continue;
            }
            if (lost || result.errorCode == ErrorCode::Busy)
                continue;
            return result; // typed rejection: not retriable
        }
        have_id = true;
        result.sessionId = id;

        if (state == SessionState::Complete) {
            // The session finished in a previous life; the spooled
            // Report follows immediately.
            Frame reply;
            if (!readFrame(fd_, reply, &error, kMaxFramePayload,
                           &lost)) {
                result.error = error;
                result.connectionLost = lost;
                close();
                if (lost)
                    continue;
                return result;
            }
            close();
            if (reply.type != FrameType::Report) {
                result.error = "unexpected frame after Complete ack";
                return result;
            }
            if (!decodeReportPayload(reply.payload, result.report,
                                     &error)) {
                result.error = error;
                return result;
            }
            result.ok = true;
            result.servedFromSpool = true;
            result.connectionLost = false;
            result.error.clear();
            return result;
        }
        if (state == SessionState::Resumed) {
            ++result.resumes;
            if (sent_high_water > resume_offset)
                result.replayedBytes +=
                    sent_high_water - resume_offset;
        } else if (sent_high_water > 0) {
            // Fresh after bytes went out: the daemon restarted and
            // lost its parked state; the whole upload replays.
            result.replayedBytes += sent_high_water;
        }
        if (resume_offset > bytes) {
            result.error = "server resume offset " +
                           std::to_string(resume_offset) +
                           " is past the capture (" +
                           std::to_string(bytes) + " bytes)";
            result.connectionLost = false;
            close();
            return result;
        }

        std::size_t off = static_cast<std::size_t>(resume_offset);
        bool send_failed = false;
        while (off < bytes) {
            const std::size_t take = std::min(chunk, bytes - off);
            if (!sendData(capture + off, take, &error, &lost)) {
                result.error = error;
                result.connectionLost = lost;
                adoptPendingError(result);
                send_failed = true;
                break;
            }
            off += take;
            sent_high_water =
                std::max<uint64_t>(sent_high_water, off);
            if (!dropped && options.simulateDropAfterBytes > 0 &&
                off >= options.simulateDropAfterBytes) {
                // Bench hook: kill the transport once.  A threshold at
                // or past the last byte drops between the final Data
                // frame and Finish — the classic lost-report window.
                dropped = true;
                result.error = "simulated connection drop";
                result.connectionLost = true;
                send_failed = true;
                lost = true;
                break;
            }
        }
        if (send_failed) {
            close();
            if (result.connectionLost)
                continue;
            if (result.errorCode == ErrorCode::IdleTimeout ||
                result.errorCode == ErrorCode::RetryAfter) {
                // Shed mid-upload with a typed error: the server
                // parked what it durably had, so the next attempt
                // resumes rather than replays.
                server_hint_ms = std::max(server_hint_ms,
                                          result.retryAfterMs);
                continue;
            }
            return result; // server rejected the stream: final
        }

        PushResult fin = finish(); // closes the socket either way
        fin.sessionId = id;
        fin.attempts = result.attempts;
        fin.resumes = result.resumes;
        fin.replayedBytes = result.replayedBytes;
        if (fin.ok)
            return fin;
        if (!fin.connectionLost &&
            (fin.errorCode == ErrorCode::IdleTimeout ||
             fin.errorCode == ErrorCode::RetryAfter)) {
            result.error = fin.error;
            result.errorCode = fin.errorCode;
            result.retryAfterMs = fin.retryAfterMs;
            server_hint_ms = std::max(server_hint_ms, fin.retryAfterMs);
            continue;
        }
        if (!fin.connectionLost)
            return fin;
        // The Finish (or its Report) was lost in flight.  The next
        // attempt either resumes the parked upload or — when Finish
        // did arrive and the result is already durable — collects
        // the spooled Report via the Complete handshake.
        result.error = fin.error;
        result.errorCode = fin.errorCode;
        result.connectionLost = true;
        continue;
    }

    if (result.error.empty())
        result.error = "push failed after " +
                       std::to_string(result.attempts) + " attempts";
    return result;
}

bool
Client::health(const Endpoint &endpoint, HealthState &state,
               std::string *error)
{
    Client client;
    if (!client.connect(endpoint, error))
        return false;
    if (!writeFrame(client.fd_, FrameType::HealthRequest, nullptr, 0,
                    error))
        return false;
    Frame reply;
    if (!readFrame(client.fd_, reply, error))
        return false;
    if (reply.type != FrameType::Health || reply.payload.size() != 1)
        return fail(error, "unexpected reply to HealthRequest");
    if (reply.payload[0] >
        static_cast<uint8_t>(HealthState::Draining))
        return fail(error, "unknown health state " +
                               std::to_string(reply.payload[0]));
    state = static_cast<HealthState>(reply.payload[0]);
    return true;
}

bool
Client::scrape(const Endpoint &endpoint, std::string &text,
               std::string *error)
{
    Client client;
    if (!client.connect(endpoint, error))
        return false;
    if (!writeFrame(client.fd_, FrameType::StatsRequest, nullptr, 0,
                    error))
        return false;
    Frame reply;
    if (!readFrame(client.fd_, reply, error))
        return false;
    if (reply.type != FrameType::Stats)
        return fail(error, "unexpected reply to StatsRequest");
    text.assign(reply.payload.begin(), reply.payload.end());
    return true;
}

PushResult
pushCapture(const Endpoint &endpoint, const std::string &capturePath,
            bool resilient, std::size_t uploadChunkBytes)
{
    PushResult result;
    std::ifstream in(capturePath, std::ios::binary);
    if (!in) {
        result.error = "cannot open " + capturePath;
        return result;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    Client client;
    std::string error;
    if (!client.connect(endpoint, &error)) {
        result.error = error;
        return result;
    }
    return client.push(bytes.data(), bytes.size(), resilient,
                       uploadChunkBytes);
}

PushResult
pushCaptureResumable(const Endpoint &endpoint,
                     const std::string &capturePath,
                     const PushOptions &options)
{
    PushResult result;
    std::ifstream in(capturePath, std::ios::binary);
    if (!in) {
        result.error = "cannot open " + capturePath;
        return result;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    Client client;
    return client.pushResumable(endpoint, bytes.data(), bytes.size(),
                                options);
}

} // namespace emprof::serve
