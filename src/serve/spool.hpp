/**
 * @file
 * The durable result spool: every finished served report is written
 * to disk BEFORE its Report frame leaves the socket, so a connection
 * that dies between analysis and delivery — or a daemon restart —
 * never loses a session's result.
 *
 * On-disk layout: a spool directory of append-only segment files
 * (`spool-<seq>.emspool`), each a run of CRC32C-framed records:
 *
 *     | SpoolRecordHeader (48 B) | payload (payloadBytes) | ...
 *
 * A Result record's payload is the session's Report frame payload
 * verbatim (encodeReportPayload bytes), so serving a spooled result
 * preserves the bit-identity guarantee by construction — the daemon
 * replays the exact bytes it would have sent.  An Ack record has no
 * payload; it marks the referenced session's result as collected, and
 * being a record itself it survives restarts like everything else.
 *
 * Durability follows the §10 rules: every append goes through
 * CheckedFile (typed IoError, EINTR retry, first-error-wins) and is
 * fsync'd before append() returns.  Recovery is the §10
 * longest-valid-prefix scan: open() walks each segment record by
 * record, stops at the first bad magic/CRC/short record (a torn tail
 * from a crash mid-append), and counts what it skipped.  A reopened
 * spool always starts a NEW segment, so a torn tail is never appended
 * to — it is simply dead bytes that GC eventually reclaims.
 *
 * Retention: maxResults caps the number of live (un-collected)
 * results indexed; when an append would exceed it, the oldest results
 * are force-expired (counted, so the operator can see the loss).
 * gc() deletes segments whose records are all acked or expired.
 *
 * Thread safety: all public methods are safe to call concurrently
 * (one internal mutex); the server's analysis pumps append from pool
 * threads while the I/O thread answers resume lookups.
 */

#ifndef EMPROF_SERVE_SPOOL_HPP
#define EMPROF_SERVE_SPOOL_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/io/checked_file.hpp"
#include "serve/frame.hpp"

namespace emprof::serve {

/** 48-byte record header; the struct layout is the on-disk format. */
struct SpoolRecordHeader
{
    char magic[4];         ///< 'EMSP'
    uint32_t version;      ///< kSpoolVersion
    uint32_t kind;         ///< SpoolRecordKind
    uint32_t status;       ///< report status (0 ok, 3 degraded); 0 for acks
    uint8_t sessionId[16]; ///< the session this record belongs to
    uint64_t unixMillis;   ///< wall-clock time of the append
    uint32_t payloadBytes; ///< Report frame payload length; 0 for acks
    uint32_t crc;          ///< CRC32C over header (crc = 0) + payload
};
static_assert(sizeof(SpoolRecordHeader) == 48,
              "header layout is the format");

constexpr char kSpoolMagic[4] = {'E', 'M', 'S', 'P'};
constexpr uint32_t kSpoolVersion = 1;

enum class SpoolRecordKind : uint32_t
{
    Result = 1, ///< a finished report (payload = Report frame payload)
    Ack = 2,    ///< the result was collected; GC may reclaim it
};

class ResultSpool
{
  public:
    struct Options
    {
        std::string dir;
        /** Live (un-acked) result cap; oldest are expired past it. */
        uint64_t maxResults = 4096;
        /** Rotate to a new segment past this many bytes. */
        uint64_t segmentBytes = uint64_t{8} << 20;
    };

    /** One indexed result, as `emprof_store spool list` shows it. */
    struct Entry
    {
        SessionId id{};
        uint32_t status = 0;
        uint64_t unixMillis = 0;
        uint32_t payloadBytes = 0;
        bool acked = false;
    };

    /** What recovery found when the spool directory was opened. */
    struct RecoveryStats
    {
        uint64_t segments = 0;
        uint64_t results = 0;     ///< result records indexed
        uint64_t acked = 0;       ///< results already collected
        uint64_t tornRecords = 0; ///< bytes after the valid prefix
    };

    /**
     * Open (creating if needed) the spool directory, recover every
     * segment's longest valid prefix, and start a fresh segment for
     * this process's appends.
     */
    bool open(const Options &options, std::string *error = nullptr);

    bool isOpen() const;

    const RecoveryStats &recovery() const { return recovery_; }

    /**
     * Append a finished result and fsync it.  Must complete before
     * the Report reply is sent — that ordering is what makes "the
     * client saw a Report" imply "the result is durable".
     */
    bool append(const SessionId &id, uint32_t status,
                const std::vector<uint8_t> &reportPayload,
                std::string *error = nullptr);

    /**
     * Record that @p id's result was collected.  Typed failures:
     * unknown session and double-ack both fail with a message saying
     * which (callers map them to exit codes / BadResume).
     */
    bool ack(const SessionId &id, std::string *error = nullptr);

    /** True when a live (possibly acked) result for @p id exists. */
    bool has(const SessionId &id) const;

    /**
     * Fetch a spooled result's status + verbatim Report payload.
     * Reads back from disk and re-checks the record CRC, so a result
     * damaged at rest is a typed error, not a wrong answer.
     */
    bool fetch(const SessionId &id, uint32_t &status,
               std::vector<uint8_t> &reportPayload,
               std::string *error = nullptr) const;

    /** Indexed results, oldest first. */
    std::vector<Entry> list() const;

    uint64_t resultCount() const;

    /** Results force-expired by the maxResults retention cap. */
    uint64_t expiredByRetention() const;

    /**
     * Delete segments every record of which is acked or expired.
     * @return the number of segment files removed.
     */
    uint64_t gc(std::string *error = nullptr);

    /** Flush + close; further appends fail. */
    void close();

  private:
    struct IndexEntry
    {
        std::string segment; ///< absolute path of the owning segment
        uint64_t offset = 0; ///< byte offset of the record header
        uint32_t payloadBytes = 0;
        uint32_t status = 0;
        uint64_t unixMillis = 0;
        uint64_t order = 0; ///< global append order (oldest = lowest)
        bool acked = false;
    };

    bool appendRecordLocked(SpoolRecordKind kind, const SessionId &id,
                            uint32_t status,
                            const std::vector<uint8_t> &payload,
                            std::string *error);
    bool rotateLocked(std::string *error);
    bool scanSegment(const std::string &path, uint64_t seq);
    void enforceRetentionLocked();

    mutable std::mutex mutex_;
    Options options_;
    common::io::CheckedFile active_;
    std::string activePath_;
    uint64_t activeBytes_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t nextOrder_ = 0;
    uint64_t expiredByRetention_ = 0;
    std::map<std::string, IndexEntry> index_; ///< keyed by id hex
    RecoveryStats recovery_;
    bool open_ = false;
};

} // namespace emprof::serve

#endif // EMPROF_SERVE_SPOOL_HPP
