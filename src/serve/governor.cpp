#include "serve/governor.hpp"

#include <algorithm>

namespace emprof::serve {

namespace {

/** value/limit as an overload ratio; 0 when the limit is disabled. */
double
ratio(uint64_t value, uint64_t limit)
{
    if (limit == 0)
        return 0.0;
    return static_cast<double>(value) / static_cast<double>(limit);
}

bool
breached(uint64_t value, uint64_t limit)
{
    return limit != 0 && value >= limit;
}

} // namespace

LoadGovernor::Level
LoadGovernor::classify(const LoadSnapshot &snap) const
{
    if (breached(snap.queueBytes, marks_.hardQueueBytes) ||
        breached(snap.activeSessions, marks_.hardSessions) ||
        breached(snap.connections, marks_.fdBudget))
        return Level::Hard;
    if (breached(snap.queueBytes, marks_.softQueueBytes) ||
        breached(snap.activeSessions, marks_.softSessions) ||
        breached(snap.poolQueueDepth, marks_.softPoolQueue))
        return Level::Soft;
    return Level::Normal;
}

double
LoadGovernor::softExcessRatio(const LoadSnapshot &snap) const
{
    double worst = 0.0;
    worst = std::max(worst, ratio(snap.queueBytes, marks_.softQueueBytes));
    worst =
        std::max(worst, ratio(snap.activeSessions, marks_.softSessions));
    worst = std::max(worst, ratio(snap.connections, marks_.fdBudget));
    worst = std::max(worst,
                     ratio(snap.poolQueueDepth, marks_.softPoolQueue));
    return worst;
}

uint32_t
LoadGovernor::suggestedBackoffMs(const LoadSnapshot &snap) const
{
    const uint32_t base = marks_.retryAfterBaseMs;
    const uint32_t cap = std::max(marks_.retryAfterMaxMs, base);
    const double excess = softExcessRatio(snap);
    if (excess <= 1.0)
        return base;
    // Linear ramp: base at the line (ratio 1), cap at/beyond 2x.
    const double t = std::min(excess - 1.0, 1.0);
    return base + static_cast<uint32_t>(t * static_cast<double>(cap - base));
}

uint64_t
LoadGovernor::shedTarget(const LoadSnapshot &snap) const
{
    if (classify(snap) != Level::Hard)
        return 0;
    uint64_t target = 0;
    if (breached(snap.activeSessions, marks_.hardSessions))
        target = std::max(target,
                          snap.activeSessions - marks_.hardSessions + 1);
    // Queue-byte or fd overload: shed one per tick and re-evaluate
    // next tick (a shed frees an unknown number of bytes/fds).
    if (breached(snap.queueBytes, marks_.hardQueueBytes) ||
        breached(snap.connections, marks_.fdBudget))
        target = std::max<uint64_t>(target, 1);
    return target;
}

} // namespace emprof::serve
