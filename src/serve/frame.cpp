#include "serve/frame.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "store/crc32c.hpp"

namespace emprof::serve {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

void
markLost(bool *connectionLost)
{
    if (connectionLost != nullptr)
        *connectionLost = true;
}

/** errno values that mean "the transport died", not "we misspoke". */
bool
errnoIsConnectionLoss(int e)
{
    return e == EPIPE || e == ECONNRESET || e == ECONNABORTED ||
           e == ETIMEDOUT;
}

/**
 * Write all of [data, data+len) to @p fd.  MSG_NOSIGNAL keeps a peer
 * hangup an EPIPE errno rather than a process-killing SIGPIPE; plain
 * write() is the fallback for fds that are not sockets (ENOTSOCK),
 * which only tests use.
 */
bool
writeAll(int fd, const void *data, std::size_t len, std::string *error,
         bool *connectionLost)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errnoIsConnectionLoss(errno))
                markLost(connectionLost);
            return fail(error, std::string("write failed: ") +
                                   std::strerror(errno));
        }
        if (n == 0) {
            markLost(connectionLost);
            return fail(error, "write failed: peer closed");
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readExact(int fd, void *data, std::size_t len, std::string *error,
          bool *connectionLost)
{
    uint8_t *p = static_cast<uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errnoIsConnectionLoss(errno))
                markLost(connectionLost);
            return fail(error, std::string("read failed: ") +
                                   std::strerror(errno));
        }
        if (n == 0) {
            markLost(connectionLost);
            return fail(error, "connection closed mid-frame");
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

void
fillHeader(FrameHeader &h, FrameType type, const void *payload,
           std::size_t payloadBytes)
{
    std::memcpy(h.magic, kFrameMagic, sizeof(h.magic));
    h.version = kProtocolVersion;
    h.type = static_cast<uint16_t>(type);
    h.payloadBytes = static_cast<uint32_t>(payloadBytes);
    h.payloadCrc = store::crc32c(0, payload, payloadBytes);
}

} // namespace

bool
sessionIdIsZero(const SessionId &id)
{
    for (const uint8_t b : id)
        if (b != 0)
            return false;
    return true;
}

std::string
sessionIdToHex(const SessionId &id)
{
    static const char *digits = "0123456789abcdef";
    std::string hex;
    hex.reserve(id.size() * 2);
    for (const uint8_t b : id) {
        hex.push_back(digits[b >> 4]);
        hex.push_back(digits[b & 0x0F]);
    }
    return hex;
}

bool
sessionIdFromHex(const std::string &hex, SessionId &out)
{
    if (hex.size() != out.size() * 2)
        return false;
    const auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    for (std::size_t i = 0; i < out.size(); ++i) {
        const int hi = nibble(hex[2 * i]);
        const int lo = nibble(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out[i] = static_cast<uint8_t>((hi << 4) | lo);
    }
    return true;
}

WireEvent
toWire(const profiler::StallEvent &ev)
{
    WireEvent w;
    w.startSample = ev.startSample;
    w.endSample = ev.endSample;
    std::memcpy(&w.depthBits, &ev.depth, sizeof(double));
    std::memcpy(&w.durationNsBits, &ev.durationNs, sizeof(double));
    std::memcpy(&w.stallCyclesBits, &ev.stallCycles, sizeof(double));
    std::memcpy(&w.confidenceBits, &ev.confidence, sizeof(double));
    w.kind = static_cast<uint32_t>(ev.kind);
    w.level = static_cast<uint32_t>(ev.level);
    std::memcpy(&w.levelConfidenceBits, &ev.levelConfidence,
                sizeof(double));
    return w;
}

profiler::StallEvent
fromWire(const WireEvent &w)
{
    profiler::StallEvent ev;
    ev.startSample = w.startSample;
    ev.endSample = w.endSample;
    std::memcpy(&ev.depth, &w.depthBits, sizeof(double));
    std::memcpy(&ev.durationNs, &w.durationNsBits, sizeof(double));
    std::memcpy(&ev.stallCycles, &w.stallCyclesBits, sizeof(double));
    std::memcpy(&ev.confidence, &w.confidenceBits, sizeof(double));
    ev.kind = static_cast<profiler::StallKind>(w.kind);
    ev.level = static_cast<profiler::ServiceLevel>(w.level);
    std::memcpy(&ev.levelConfidence, &w.levelConfidenceBits,
                sizeof(double));
    return ev;
}

void
appendFrame(std::vector<uint8_t> &out, FrameType type,
            const void *payload, std::size_t payloadBytes)
{
    FrameHeader h;
    fillHeader(h, type, payload, payloadBytes);
    const uint8_t *hp = reinterpret_cast<const uint8_t *>(&h);
    out.insert(out.end(), hp, hp + sizeof(h));
    if (payloadBytes > 0) {
        const uint8_t *pp = static_cast<const uint8_t *>(payload);
        out.insert(out.end(), pp, pp + payloadBytes);
    }
}

long
parseFrame(const uint8_t *buffer, std::size_t size, Frame &frame,
           std::string *error)
{
    if (size < sizeof(FrameHeader))
        return 0;
    FrameHeader h;
    std::memcpy(&h, buffer, sizeof(h));
    if (std::memcmp(h.magic, kFrameMagic, sizeof(h.magic)) != 0) {
        fail(error, "bad frame magic");
        return -1;
    }
    if (h.version != kProtocolVersion) {
        fail(error, "unsupported protocol version " +
                        std::to_string(h.version));
        return -1;
    }
    if (h.type < static_cast<uint16_t>(FrameType::Open) ||
        h.type > static_cast<uint16_t>(FrameType::Health)) {
        fail(error, "unknown frame type " + std::to_string(h.type));
        return -1;
    }
    if (h.payloadBytes > kMaxFramePayload) {
        fail(error, "frame payload " + std::to_string(h.payloadBytes) +
                        " bytes exceeds the cap");
        return -1;
    }
    if (size < sizeof(h) + h.payloadBytes)
        return 0;
    const uint8_t *payload = buffer + sizeof(h);
    if (store::crc32c(0, payload, h.payloadBytes) != h.payloadCrc) {
        fail(error, "frame payload CRC mismatch");
        return -1;
    }
    frame.type = static_cast<FrameType>(h.type);
    frame.payload.assign(payload, payload + h.payloadBytes);
    return static_cast<long>(sizeof(h) + h.payloadBytes);
}

bool
writeFrame(int fd, FrameType type, const void *payload,
           std::size_t payloadBytes, std::string *error,
           bool *connectionLost)
{
    if (payloadBytes > kMaxFramePayload)
        return fail(error, "frame payload exceeds the cap");
    FrameHeader h;
    fillHeader(h, type, payload, payloadBytes);
    if (!writeAll(fd, &h, sizeof(h), error, connectionLost))
        return false;
    return payloadBytes == 0 ||
           writeAll(fd, payload, payloadBytes, error, connectionLost);
}

bool
readFrame(int fd, Frame &frame, std::string *error,
          std::size_t maxPayload, bool *connectionLost)
{
    FrameHeader h;
    if (!readExact(fd, &h, sizeof(h), error, connectionLost))
        return false;
    std::vector<uint8_t> raw(sizeof(h));
    std::memcpy(raw.data(), &h, sizeof(h));
    if (std::memcmp(h.magic, kFrameMagic, sizeof(h.magic)) != 0)
        return fail(error, "bad frame magic");
    if (h.payloadBytes > maxPayload)
        return fail(error, "frame payload exceeds the cap");
    raw.resize(sizeof(h) + h.payloadBytes);
    if (h.payloadBytes > 0 &&
        !readExact(fd, raw.data() + sizeof(h), h.payloadBytes, error,
                   connectionLost))
        return false;
    std::string parse_error;
    const long consumed =
        parseFrame(raw.data(), raw.size(), frame, &parse_error);
    if (consumed <= 0)
        return fail(error, parse_error.empty() ? "malformed frame"
                                               : parse_error);
    return true;
}

std::vector<uint8_t>
encodeReportPayload(uint32_t status, uint64_t totalSamples,
                    double coverageFraction,
                    const std::vector<profiler::StallEvent> &events,
                    const std::string &reportText)
{
    ReportHeader rh;
    rh.status = status;
    rh.eventCount = static_cast<uint32_t>(events.size());
    rh.totalSamples = totalSamples;
    rh.coverageFraction = coverageFraction;

    std::vector<uint8_t> payload;
    payload.reserve(sizeof(rh) + events.size() * sizeof(WireEvent) +
                    reportText.size());
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&rh);
    payload.insert(payload.end(), p, p + sizeof(rh));
    for (const auto &ev : events) {
        const WireEvent w = toWire(ev);
        const uint8_t *wp = reinterpret_cast<const uint8_t *>(&w);
        payload.insert(payload.end(), wp, wp + sizeof(w));
    }
    payload.insert(payload.end(), reportText.begin(), reportText.end());
    return payload;
}

bool
decodeReportPayload(const std::vector<uint8_t> &payload,
                    DecodedReport &out, std::string *error)
{
    if (payload.size() < sizeof(ReportHeader))
        return fail(error, "report payload shorter than its header");
    ReportHeader rh;
    std::memcpy(&rh, payload.data(), sizeof(rh));
    const std::size_t events_bytes =
        static_cast<std::size_t>(rh.eventCount) * sizeof(WireEvent);
    if (payload.size() < sizeof(rh) + events_bytes)
        return fail(error, "report payload truncated mid-events");
    out.status = rh.status;
    out.totalSamples = rh.totalSamples;
    out.coverageFraction = rh.coverageFraction;
    out.events.clear();
    out.events.reserve(rh.eventCount);
    const uint8_t *p = payload.data() + sizeof(rh);
    for (uint32_t i = 0; i < rh.eventCount; ++i) {
        WireEvent w;
        std::memcpy(&w, p + i * sizeof(w), sizeof(w));
        out.events.push_back(fromWire(w));
    }
    out.reportText.assign(
        payload.begin() +
            static_cast<long>(sizeof(rh) + events_bytes),
        payload.end());
    return true;
}

std::vector<uint8_t>
encodeOpenAckPayload(const SessionId &id, uint64_t resumeOffset,
                     SessionState state)
{
    OpenAckPayload ack{};
    std::memcpy(ack.sessionId, id.data(), id.size());
    ack.resumeOffset = resumeOffset;
    ack.state = static_cast<uint32_t>(state);
    ack.reserved = 0;
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&ack);
    return std::vector<uint8_t>(p, p + sizeof(ack));
}

bool
decodeOpenAckPayload(const std::vector<uint8_t> &payload, SessionId &id,
                     uint64_t &resumeOffset, SessionState &state,
                     std::string *error)
{
    if (payload.size() != sizeof(OpenAckPayload))
        return fail(error, "bad OpenAck payload size");
    OpenAckPayload ack;
    std::memcpy(&ack, payload.data(), sizeof(ack));
    if (ack.state > static_cast<uint32_t>(SessionState::Complete))
        return fail(error, "unknown OpenAck session state " +
                               std::to_string(ack.state));
    std::memcpy(id.data(), ack.sessionId, id.size());
    resumeOffset = ack.resumeOffset;
    state = static_cast<SessionState>(ack.state);
    return true;
}

std::vector<uint8_t>
encodeErrorPayload(ErrorCode code, const std::string &message)
{
    ErrorHeader eh;
    eh.code = static_cast<uint32_t>(code);
    std::vector<uint8_t> payload;
    payload.reserve(sizeof(eh) + message.size());
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&eh);
    payload.insert(payload.end(), p, p + sizeof(eh));
    payload.insert(payload.end(), message.begin(), message.end());
    return payload;
}

std::vector<uint8_t>
encodeRetryAfterPayload(uint32_t retryAfterMs, const std::string &message)
{
    ErrorHeader eh;
    eh.code = static_cast<uint32_t>(ErrorCode::RetryAfter);
    std::vector<uint8_t> payload;
    payload.reserve(sizeof(eh) + sizeof(retryAfterMs) + message.size());
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&eh);
    payload.insert(payload.end(), p, p + sizeof(eh));
    const uint8_t *hp = reinterpret_cast<const uint8_t *>(&retryAfterMs);
    payload.insert(payload.end(), hp, hp + sizeof(retryAfterMs));
    payload.insert(payload.end(), message.begin(), message.end());
    return payload;
}

bool
decodeErrorPayload(const std::vector<uint8_t> &payload, ErrorCode &code,
                   std::string &message, uint32_t *retryAfterMs)
{
    if (retryAfterMs != nullptr)
        *retryAfterMs = 0;
    if (payload.size() < sizeof(ErrorHeader)) {
        code = ErrorCode::Internal;
        message.assign(payload.begin(), payload.end());
        return false;
    }
    ErrorHeader eh;
    std::memcpy(&eh, payload.data(), sizeof(eh));
    code = static_cast<ErrorCode>(eh.code);
    std::size_t offset = sizeof(eh);
    if (code == ErrorCode::RetryAfter &&
        payload.size() >= sizeof(eh) + sizeof(uint32_t)) {
        uint32_t hint = 0;
        std::memcpy(&hint, payload.data() + offset, sizeof(hint));
        if (retryAfterMs != nullptr)
            *retryAfterMs = hint;
        offset += sizeof(hint);
    }
    message.assign(payload.begin() + static_cast<long>(offset),
                   payload.end());
    return true;
}

} // namespace emprof::serve
