#include "serve/emcap_stream.hpp"

#include <cstring>

#include "store/chunk_codec.hpp"
#include "store/crc32c.hpp"

namespace emprof::serve {

bool
EmcapStreamDecoder::poison(std::string *error, const std::string &message)
{
    state_ = State::Poisoned;
    poisonReason_ = message;
    pending_.clear();
    pending_.shrink_to_fit();
    if (error != nullptr)
        *error = message;
    return false;
}

bool
EmcapStreamDecoder::onFileHeader(std::string *error)
{
    store::FileHeader header{};
    std::memcpy(&header, pending_.data(), sizeof(header));
    if (std::memcmp(header.magic, store::kEmcapMagic,
                    sizeof(store::kEmcapMagic)) != 0)
        return poison(error, "bad magic: not an EMCAP stream");
    if (header.version != store::kEmcapVersion)
        return poison(error, "unsupported EMCAP version");
    if (store::crc32c(0, &header,
                      offsetof(store::FileHeader, headerCrc)) !=
        header.headerCrc)
        return poison(error, "file header CRC mismatch");
    if (header.codec != static_cast<uint32_t>(store::SampleCodec::F32) &&
        header.codec !=
            static_cast<uint32_t>(store::SampleCodec::QuantI16))
        return poison(error, "unknown sample codec");
    if (header.totalSamples == 0)
        return poison(error, "capture declares zero samples "
                             "(unfinalized or empty upload)");

    info_.version = header.version;
    info_.codec = static_cast<store::SampleCodec>(header.codec);
    info_.quantBits = header.quantBits;
    info_.sampleRateHz = header.sampleRateHz;
    info_.clockHz = header.clockHz;
    info_.totalSamples = header.totalSamples;
    char name[sizeof(header.deviceName) + 1] = {};
    std::memcpy(name, header.deviceName, sizeof(header.deviceName));
    info_.deviceName = name;
    headerReady_ = true;
    return true;
}

bool
EmcapStreamDecoder::onChunk(std::vector<dsp::Sample> &out,
                            std::string *error)
{
    // pending_ holds header + payload; the CRC covers the first 16
    // header bytes and then the payload, same as the on-disk reader.
    uint32_t crc = store::crc32c(0, pending_.data(),
                                 offsetof(store::ChunkHeader, crc));
    crc = store::crc32c(crc,
                        pending_.data() + sizeof(store::ChunkHeader),
                        chunkHeader_.payloadBytes);
    if (crc != chunkHeader_.crc)
        return poison(error, "chunk " +
                                 std::to_string(chunksDecoded_) +
                                 " CRC mismatch");

    const std::size_t base = out.size();
    out.resize(base + chunkHeader_.sampleCount);
    if (!store::decodeChunk(
            pending_.data() + sizeof(store::ChunkHeader),
            chunkHeader_.payloadBytes,
            static_cast<store::ChunkEncoding>(chunkHeader_.encoding),
            info_.codec, chunkHeader_.scale, chunkHeader_.sampleCount,
            out.data() + base)) {
        out.resize(base);
        return poison(error, "chunk " +
                                 std::to_string(chunksDecoded_) +
                                 " payload is malformed");
    }
    samplesDecoded_ += chunkHeader_.sampleCount;
    ++chunksDecoded_;
    if (samplesDecoded_ > info_.totalSamples)
        return poison(error,
                      "chunk stream overruns the declared "
                      "sample count");
    return true;
}

bool
EmcapStreamDecoder::feed(const uint8_t *data, std::size_t n,
                         std::vector<dsp::Sample> &out,
                         std::string *error)
{
    if (state_ == State::Poisoned)
        return poison(error, poisonReason_);

    while (n > 0) {
        if (state_ == State::Footer) {
            // Past the chunk region everything is footer: count it
            // and remember the last four bytes for the EMCF check.
            footerBytes_ += n;
            bytesConsumed_ += n;
            if (n >= sizeof(tail4_)) {
                std::memcpy(tail4_, data + n - sizeof(tail4_),
                            sizeof(tail4_));
            } else {
                uint8_t merged[8];
                std::memcpy(merged, tail4_, sizeof(tail4_));
                std::memcpy(merged + sizeof(tail4_), data, n);
                std::memcpy(tail4_, merged + n, sizeof(tail4_));
            }
            return true;
        }

        const std::size_t take = std::min(n, need_ - pending_.size());
        pending_.insert(pending_.end(), data, data + take);
        data += take;
        n -= take;
        bytesConsumed_ += take;
        if (pending_.size() < need_)
            return true; // mid-element; wait for more bytes

        switch (state_) {
        case State::FileHeader:
            if (!onFileHeader(error))
                return false;
            state_ = State::ChunkHeader;
            need_ = sizeof(store::ChunkHeader);
            break;
        case State::ChunkHeader: {
            std::memcpy(&chunkHeader_, pending_.data(),
                        sizeof(chunkHeader_));
            if (chunkHeader_.sampleCount == 0)
                return poison(error, "chunk declares zero samples");
            // Even 2-bit packing cannot shrink below count/4 bytes,
            // and nothing legitimate inflates past 4 bytes/sample +
            // slack — reject absurd headers before allocating.
            const uint64_t count = chunkHeader_.sampleCount;
            if (chunkHeader_.payloadBytes > count * 8 + 64 ||
                count > info_.totalSamples)
                return poison(error,
                              "chunk header implausible (corrupt "
                              "stream?)");
            need_ = sizeof(store::ChunkHeader) +
                    chunkHeader_.payloadBytes;
            state_ = State::ChunkPayload;
            break;
        }
        case State::ChunkPayload:
            if (!onChunk(out, error))
                return false;
            pending_.clear();
            if (samplesDecoded_ == info_.totalSamples) {
                state_ = State::Footer;
                need_ = 0;
            } else {
                state_ = State::ChunkHeader;
                need_ = sizeof(store::ChunkHeader);
            }
            break;
        case State::Footer:
        case State::Poisoned:
            break; // unreachable: handled above
        }
        if (state_ != State::ChunkPayload)
            pending_.clear();
    }
    return true;
}

bool
EmcapStreamDecoder::complete(std::string *error) const
{
    const auto fail = [error](const std::string &message) {
        if (error != nullptr)
            *error = message;
        return false;
    };
    if (state_ == State::Poisoned)
        return fail(poisonReason_);
    if (!headerReady_)
        return fail("upload ended before the EMCAP header");
    if (state_ != State::Footer)
        return fail("upload truncated: " +
                    std::to_string(samplesDecoded_) + " of " +
                    std::to_string(info_.totalSamples) +
                    " samples received");
    const uint64_t expected =
        chunksDecoded_ * sizeof(store::ChunkIndexEntry) +
        sizeof(store::FooterTail);
    if (footerBytes_ != expected)
        return fail("upload truncated mid-footer (" +
                    std::to_string(footerBytes_) + " of " +
                    std::to_string(expected) + " footer bytes)");
    if (std::memcmp(tail4_, store::kFooterMagic,
                    sizeof(store::kFooterMagic)) != 0)
        return fail("footer magic missing at end of upload");
    return true;
}

} // namespace emprof::serve
