#include "serve/session_pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "profiler/batch_pipeline.hpp"
#include "store/emcap_format.hpp"

namespace emprof::serve {

SessionPipeline::SessionPipeline(const profiler::EmProfConfig &base,
                                 std::size_t spanSamples,
                                 bool honourCaptureClock)
    : config_(base), spanSamples_(spanSamples),
      honourCaptureClock_(honourCaptureClock)
{
}

bool
SessionPipeline::poison(std::string *error, const std::string &message)
{
    poisoned_ = true;
    poisonReason_ = message;
    buffer_.clear();
    buffer_.shrink_to_fit();
    if (error != nullptr)
        *error = message;
    return false;
}

bool
SessionPipeline::onHeader(std::string *error)
{
    const store::CaptureInfo &info = decoder_.info();
    config_.sampleRateHz = info.sampleRateHz;
    if (honourCaptureClock_ && info.clockHz > 0.0)
        config_.clockHz = info.clockHz;
    std::string why;
    if (!config_.validate(&why))
        return poison(error, "capture metadata yields an invalid "
                             "analysis config: " +
                                 why);
    if (spanSamples_ == 0)
        spanSamples_ = std::max(store::kDefaultChunkSamples,
                                8 * config_.normWindowSamples());
    stitcher_.emplace(config_);
    return true;
}

void
SessionPipeline::analyzeSpan(uint64_t end, bool is_final)
{
    static const auto span_hist =
        obs::MetricsRegistry::instance().histogram(
            "emprof.serve.stage.analyze_span_us");
    const auto t0 = std::chrono::steady_clock::now();

    const profiler::ChunkResult chunk = profiler::analyzeChunkAuto(
        buffer_.data(), bufferBegin_, nextBegin_, end, is_final,
        config_);
    stitcher_->feed(chunk);
    ++spansAnalyzed_;
    nextBegin_ = end;

    // Trim the buffer back to the halo the next span will re-feed.
    const uint64_t halo =
        std::min<uint64_t>(end, config_.haloSamples());
    const uint64_t keep_from = end - halo;
    if (keep_from > bufferBegin_) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(keep_from -
                                                      bufferBegin_));
        bufferBegin_ = keep_from;
    }

    if (obs::MetricsRegistry::enabled())
        span_hist.observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
}

bool
SessionPipeline::feed(const uint8_t *data, std::size_t n,
                      std::string *error)
{
    if (poisoned_)
        return poison(error, poisonReason_);
    if (finished_)
        return poison(error, "feed() after finish()");

    const bool had_header = decoder_.headerReady();
    if (!decoder_.feed(data, n, buffer_, error))
        return poison(error, error != nullptr ? *error
                                              : "malformed stream");
    if (!had_header && decoder_.headerReady() && !onHeader(error))
        return false;

    // Analyse every full span, but always hold back at least one
    // sample so the closing span can carry is_final (see file doc).
    while (bufferBegin_ + buffer_.size() - nextBegin_ > spanSamples_)
        analyzeSpan(nextBegin_ + spanSamples_, /*is_final=*/false);
    return true;
}

bool
SessionPipeline::finish(profiler::ProfileResult &out, std::string *error)
{
    if (poisoned_)
        return poison(error, poisonReason_);
    if (finished_)
        return poison(error, "finish() called twice");
    finished_ = true;

    if (!decoder_.complete(error)) {
        poisoned_ = true;
        poisonReason_ = error != nullptr ? *error : "incomplete upload";
        return false;
    }

    // complete() implies every declared sample was decoded, and the
    // strict > in feed() left at least one of them unanalysed.
    const uint64_t total = decoder_.info().totalSamples;
    analyzeSpan(total, /*is_final=*/true);
    out = stitcher_->finalize(total);

    buffer_.clear();
    buffer_.shrink_to_fit();
    return true;
}

} // namespace emprof::serve
