#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <random>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/chaos.hpp"
#include "serve/frame.hpp"
#include "serve/session_pipeline.hpp"

namespace emprof::serve {

namespace {

/** Handles registered once; no-ops while obs is disabled. */
struct ServeMetrics
{
    obs::Counter accepted;
    obs::Counter rejected;
    obs::Counter aborted;
    obs::Counter completed;
    obs::Counter bytesIngested;
    obs::Counter framesMalformed;
    obs::Counter parked;
    obs::Counter resumed;
    obs::Counter spooled;
    obs::Counter servedFromSpool;
    obs::Counter timedOut;
    obs::Counter shed;
    obs::Counter retryAfterSent;
    obs::Counter acceptFdExhausted;
    obs::Counter spoolFailed;
    obs::Counter parkedEvicted;
    obs::Counter parkedExpired;
    obs::Gauge sessionsActive;
    obs::Gauge queueDepthBytes;
    obs::Histogram sessionUs;
    obs::Histogram feedUs;

    static const ServeMetrics &
    instance()
    {
        static const ServeMetrics m = [] {
            auto &reg = obs::MetricsRegistry::instance();
            ServeMetrics v;
            v.accepted = reg.counter("emprof.serve.sessions_accepted");
            v.rejected = reg.counter("emprof.serve.sessions_rejected");
            v.aborted = reg.counter("emprof.serve.sessions_aborted");
            v.completed =
                reg.counter("emprof.serve.sessions_completed");
            v.bytesIngested = reg.counter("emprof.serve.bytes_ingested");
            v.framesMalformed =
                reg.counter("emprof.serve.frames_malformed");
            v.parked = reg.counter("emprof.serve.sessions_parked");
            v.resumed = reg.counter("emprof.serve.sessions_resumed");
            v.spooled = reg.counter("emprof.serve.results_spooled");
            v.servedFromSpool =
                reg.counter("emprof.serve.results_served_from_spool");
            v.timedOut = reg.counter("emprof.serve.sessions_timed_out");
            v.shed = reg.counter("emprof.serve.sessions_shed");
            v.retryAfterSent =
                reg.counter("emprof.serve.retry_after_sent");
            v.acceptFdExhausted =
                reg.counter("emprof.serve.accept_fd_exhausted");
            v.spoolFailed =
                reg.counter("emprof.serve.results_spool_failed");
            v.parkedEvicted =
                reg.counter("emprof.serve.parked_evicted");
            v.parkedExpired =
                reg.counter("emprof.serve.parked_expired");
            v.sessionsActive =
                reg.gauge("emprof.serve.sessions_active");
            v.queueDepthBytes =
                reg.gauge("emprof.serve.queue_depth_bytes");
            v.sessionUs =
                reg.histogram("emprof.serve.stage.session_us");
            v.feedUs = reg.histogram("emprof.serve.stage.feed_us");
            return v;
        }();
        return m;
    }
};

uint64_t
elapsedUs(std::chrono::steady_clock::time_point since)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/**
 * Bound a blocking send on @p fd.  A shed session's peer is hostile
 * by definition — it may never read — so every typed-error write to
 * one must carry a timeout or the I/O thread wedges on a full socket
 * buffer (the one thread every session depends on).
 */
void
setSendTimeoutMs(int fd, int ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** Send-timeout applied to typed-error writes toward hostile peers. */
constexpr int kShedWriteTimeoutMs = 1000;

SessionId
randomSessionId()
{
    static std::mutex mutex;
    static std::mt19937_64 rng{[] {
        std::random_device rd;
        return (uint64_t{rd()} << 32) ^ rd() ^
               static_cast<uint64_t>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch()
                       .count());
    }()};
    std::lock_guard<std::mutex> lock(mutex);
    SessionId id;
    for (std::size_t i = 0; i < id.size(); i += 8) {
        const uint64_t word = rng();
        std::memcpy(id.data() + i, &word, 8);
    }
    return id;
}

} // namespace

struct Server::Listener
{
    int fd = -1;
    bool tcp = false;
};

struct Server::Session
{
    ~Session()
    {
        if (fd >= 0)
            ::close(fd);
    }

    int fd = -1;
    std::chrono::steady_clock::time_point openedAt;

    // ---- I/O-thread-only state ----
    std::vector<uint8_t> inbox; ///< unparsed bytes off the socket
    bool openSeen = false;
    bool suspended = false; ///< reads paused (backpressure)
    SessionId id{};         ///< assigned (or adopted) at Open

    // ---- I/O-thread-only overload bookkeeping ----
    /** Last instant bytes arrived (or a server-side stall — pump or
     *  backpressure — excused the silence). */
    std::chrono::steady_clock::time_point lastProgressAt;
    uint64_t socketBytesRead = 0; ///< raw bytes read off the socket
    std::chrono::steady_clock::time_point rateWindowStart;
    uint64_t rateWindowBase = 0; ///< socketBytesRead at window start

    // ---- shared queue (mutex-guarded) ----
    std::mutex mutex;
    std::deque<std::vector<uint8_t>> pending; ///< Data payloads
    std::size_t pendingBytes = 0;
    bool finishRequested = false;
    bool taskInFlight = false;

    /** Set (under mutex) by the I/O thread before aborted when a
     *  pump-owned session is shed, so the pump's abort path replies
     *  with the shed's typed error instead of generic Shutdown. */
    uint32_t shedCode = 0; ///< ErrorCode; 0 = not a shed
    std::string shedMessage;
    uint32_t shedRetryAfterMs = 0;

    // ---- cross-thread flags ----
    std::atomic<bool> closed{false};  ///< reap me (I/O thread acts)
    std::atomic<bool> aborted{false}; ///< server shutting down
    std::atomic<bool> replied{false}; ///< Report or Error was sent

    /** Worker-owned after Open (the pump is the only caller). */
    std::unique_ptr<SessionPipeline> pipeline;
};

/**
 * A disconnected session's analysis state, waiting for its client to
 * reconnect.  Held in parked_ until resumed, expired (TTL) or evicted
 * (maxParked).
 */
struct Server::Parked
{
    std::unique_ptr<SessionPipeline> pipeline;
    uint64_t resumeOffset = 0;  ///< element-aligned durable offset
    bool resilient = false;     ///< must match the resuming Open
    std::chrono::steady_clock::time_point deadline;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { stop(); }

bool
Server::start(std::string *error)
{
    const auto fail = [&](const std::string &message) {
        if (error != nullptr)
            *error = message;
        for (auto &l : listeners_)
            ::close(l.fd);
        listeners_.clear();
        for (int &fd : wakePipe_) {
            if (fd >= 0)
                ::close(fd);
            fd = -1;
        }
        spool_.close();
        return false;
    };

    if (running_.load())
        return fail("server already running");
    if (config_.unixPath.empty() && config_.tcpPort < 0)
        return fail("no listener configured (unix path or tcp port)");

    if (!config_.spoolDir.empty()) {
        ResultSpool::Options opts;
        opts.dir = config_.spoolDir;
        opts.maxResults = config_.spoolRetain;
        std::string why;
        if (!spool_.open(opts, &why))
            return fail("cannot open result spool: " + why);
    }

    if (::pipe(wakePipe_) != 0)
        return fail(std::string("pipe failed: ") +
                    std::strerror(errno));
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);

    if (!config_.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.unixPath.size() >= sizeof(addr.sun_path))
            return fail("unix socket path too long");
        std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return fail(std::string("socket failed: ") +
                        std::strerror(errno));
        ::unlink(config_.unixPath.c_str()); // stale socket from a crash
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 128) != 0) {
            const int e = errno;
            ::close(fd);
            return fail("cannot listen on " + config_.unixPath + ": " +
                        std::strerror(e));
        }
        setNonBlocking(fd);
        listeners_.push_back({fd, false});
    }

    if (config_.tcpPort >= 0) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return fail(std::string("socket failed: ") +
                        std::strerror(errno));
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<uint16_t>(config_.tcpPort));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 128) != 0) {
            const int e = errno;
            ::close(fd);
            return fail("cannot listen on tcp port " +
                        std::to_string(config_.tcpPort) + ": " +
                        std::strerror(e));
        }
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
        boundTcpPort_ = static_cast<int>(ntohs(addr.sin_port));
        setNonBlocking(fd);
        listeners_.push_back({fd, true});
    }

    governor_.configure(config_.watermarks);
    lastLevel_ = LoadGovernor::Level::Normal;
    lastQueueBytes_ = 0;
    listenerMuteUntil_ = {};
    // The emergency reserve: one fd parked on /dev/null that EMFILE
    // handling can spend to accept-and-reject a single connection.
    emergencyFd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

    pool_ = std::make_unique<common::ThreadPool>(config_.threads);
    stopping_.store(false);
    running_.store(true);
    ioThread_ = std::thread([this] { ioLoop(); });
    return true;
}

void
Server::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    wake();
    if (ioThread_.joinable())
        ioThread_.join();

    // Tell in-flight sessions to bail, then run the pool dry so every
    // pump observes the abort and replies Shutdown before its session
    // (and fd) is released.
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (auto &s : sessions_)
            s->aborted.store(true);
    }
    pool_->drain();

    std::vector<std::shared_ptr<Session>> leftovers;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        leftovers.swap(sessions_);
        stats_.sessionsActive = 0;
    }
    for (auto &s : leftovers) {
        if (s->openSeen && !s->replied.load()) {
            const auto payload = encodeErrorPayload(
                ErrorCode::Shutdown, "server shutting down");
            writeFrame(s->fd, FrameType::Error, payload.data(),
                       payload.size());
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            ++stats_.sessionsRejected;
        }
    }
    leftovers.clear(); // destructors close the fds

    // Parked pipelines die with the process anyway on a real restart;
    // dropping them is safe because a resume of an unknown id simply
    // starts the upload over from offset 0.
    std::map<std::string, std::shared_ptr<Parked>> parked;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        parked.swap(parked_);
    }
    parked.clear();
    spool_.close();

    for (auto &l : listeners_)
        ::close(l.fd);
    listeners_.clear();
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
    for (int &fd : wakePipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    if (emergencyFd_ >= 0) {
        ::close(emergencyFd_);
        emergencyFd_ = -1;
    }
    ServeMetrics::instance().sessionsActive.set(0);
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    return stats_;
}

void
Server::wake()
{
    const char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    (void)!::write(wakePipe_[1], &byte, 1);
}

void
Server::ioLoop()
{
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Session>> polled;

    while (!stopping_.load()) {
        fds.clear();
        polled.clear();
        fds.push_back({wakePipe_[0], POLLIN, 0});
        // A muted listener stays in the set (events = 0) so the index
        // arithmetic below is unconditional; it just cannot wake us.
        const bool listeners_muted =
            std::chrono::steady_clock::now() < listenerMuteUntil_;
        for (const auto &l : listeners_)
            fds.push_back(
                {l.fd,
                 static_cast<short>(listeners_muted ? 0 : POLLIN), 0});

        std::size_t queue_bytes = 0;
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            for (const auto &s : sessions_) {
                if (s->closed.load())
                    continue;
                std::size_t pending_bytes;
                {
                    std::lock_guard<std::mutex> qlock(s->mutex);
                    pending_bytes = s->pendingBytes;
                }
                queue_bytes += pending_bytes;
                // Hysteresis: stop reading at the budget, resume
                // only once the pump drained below half of it.
                if (!s->suspended &&
                    pending_bytes >= config_.sessionBufferBytes)
                    s->suspended = true;
                else if (s->suspended &&
                         pending_bytes <=
                             config_.sessionBufferBytes / 2)
                    s->suspended = false;
                fds.push_back(
                    {s->fd,
                     static_cast<short>(s->suspended ? 0 : POLLIN),
                     0});
                polled.push_back(s);
            }
        }
        ServeMetrics::instance().queueDepthBytes.set(
            static_cast<int64_t>(queue_bytes));
        lastQueueBytes_ = queue_bytes;

        const int n =
            ::poll(fds.data(), fds.size(), /*timeout ms=*/200);
        if (n < 0 && errno != EINTR)
            break; // poll itself failed; nothing sane left to do
        if (stopping_.load())
            break;

        std::size_t idx = 0;
        if (fds[idx].revents & POLLIN) {
            char buf[64];
            while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
            }
        }
        ++idx;
        for (const auto &l : listeners_) {
            if (fds[idx].revents & POLLIN)
                acceptPending(l.fd);
            ++idx;
        }
        for (std::size_t i = 0; i < polled.size(); ++i) {
            const short got = fds[idx + i].revents;
            if (got & (POLLIN | POLLHUP | POLLERR))
                handleReadable(polled[i]);
        }

        enforceOverload(polled);

        // Reap sessions whose pump (or this loop) marked them closed.
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            std::size_t active = 0;
            auto keep = sessions_.begin();
            for (auto &s : sessions_) {
                if (s->closed.load())
                    continue; // dropped; dtor closes the fd later
                if (s->openSeen)
                    ++active;
                *keep++ = s;
            }
            sessions_.erase(keep, sessions_.end());
            stats_.sessionsActive = active;
            ServeMetrics::instance().sessionsActive.set(
                static_cast<int64_t>(active));
        }
        purgeParked();
    }
}

void
Server::purgeParked()
{
    // Collect expired entries under the lock, destroy them outside it
    // (a pipeline teardown is not free).
    std::vector<std::shared_ptr<Parked>> expired;
    const auto now = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (auto it = parked_.begin(); it != parked_.end();) {
            if (it->second->deadline <= now) {
                expired.push_back(std::move(it->second));
                it = parked_.erase(it);
            } else {
                ++it;
            }
        }
        stats_.parkedExpired += expired.size();
    }
    if (!expired.empty())
        ServeMetrics::instance().parkedExpired.add(
            static_cast<int64_t>(expired.size()));
    expired.clear();
}

void
Server::parkSession(const std::shared_ptr<Session> &session)
{
    auto parked = std::make_shared<Parked>();
    parked->resumeOffset = session->pipeline->rewindToResumable();
    parked->resilient = session->pipeline->resilient();
    parked->pipeline = std::move(session->pipeline);
    parked->deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config_.resumeTtlSeconds));

    std::shared_ptr<Parked> evicted;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        if (parked_.size() >= config_.maxParked) {
            // Evict the entry closest to expiry; its client falls
            // back to a fresh upload from offset 0.
            auto oldest = parked_.begin();
            for (auto it = parked_.begin(); it != parked_.end(); ++it)
                if (it->second->deadline < oldest->second->deadline)
                    oldest = it;
            evicted = std::move(oldest->second);
            parked_.erase(oldest);
            ++stats_.parkedEvicted;
        }
        parked_[sessionIdToHex(session->id)] = std::move(parked);
        ++stats_.sessionsParked;
    }
    if (evicted)
        ServeMetrics::instance().parkedEvicted.inc();
    ServeMetrics::instance().parked.inc();
    session->replied.store(true); // no reply possible; don't count it
    session->closed.store(true);
    evicted.reset();
}

void
Server::acceptPending(int listenFd)
{
    for (;;) {
        int fd;
        int chaos_errno = 0;
        if (ChaosInjector::stealAccept(&chaos_errno)) {
            fd = -1;
            errno = chaos_errno;
        } else {
            fd = ::accept(listenFd, nullptr, nullptr);
        }
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return; // backlog drained: the normal exit
            if (errno == ECONNABORTED)
                continue; // that one connection died; the next may not
            if (errno == EMFILE || errno == ENFILE) {
                // fd exhaustion.  The listener stays readable, so a
                // blanket return would spin the poll loop hot doing
                // nothing.  Spend the emergency fd to accept ONE
                // waiting connection and tell it (typed RetryAfter)
                // to come back, then mute the listener for a tick.
                {
                    std::lock_guard<std::mutex> lock(sessionsMutex_);
                    ++stats_.acceptFdExhausted;
                }
                const auto &metrics = ServeMetrics::instance();
                metrics.acceptFdExhausted.inc();
                if (emergencyFd_ >= 0) {
                    ::close(emergencyFd_);
                    emergencyFd_ = -1;
                    const int efd =
                        ::accept(listenFd, nullptr, nullptr);
                    if (efd >= 0) {
                        setSendTimeoutMs(efd, kShedWriteTimeoutMs);
                        const auto payload = encodeRetryAfterPayload(
                            governor_.watermarks().retryAfterBaseMs,
                            "server out of file descriptors; "
                            "retry later");
                        writeFrame(efd, FrameType::Error,
                                   payload.data(), payload.size());
                        {
                            std::lock_guard<std::mutex> lock(
                                sessionsMutex_);
                            ++stats_.retryAfterSent;
                            ++stats_.sessionsRejected;
                        }
                        metrics.retryAfterSent.inc();
                        metrics.rejected.inc();
                        ::close(efd);
                    }
                    emergencyFd_ =
                        ::open("/dev/null", O_RDONLY | O_CLOEXEC);
                }
                listenerMuteUntil_ =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(200);
                return;
            }
            // Unknown persistent accept failure: do not spin on a
            // listener we cannot drain; sit out one tick.
            listenerMuteUntil_ = std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(200);
            return;
        }
        auto session = std::make_shared<Session>();
        session->fd = fd;
        session->openedAt = std::chrono::steady_clock::now();
        session->lastProgressAt = session->openedAt;
        session->rateWindowStart = session->openedAt;
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions_.push_back(std::move(session));
    }
}

void
Server::rejectAndClose(const std::shared_ptr<Session> &session,
                       uint32_t code, const std::string &message,
                       uint32_t retryAfterMs)
{
    if (!session->replied.exchange(true)) {
        const auto ec = static_cast<ErrorCode>(code);
        const auto payload =
            ec == ErrorCode::RetryAfter
                ? encodeRetryAfterPayload(retryAfterMs, message)
                : encodeErrorPayload(ec, message);
        writeFrame(session->fd, FrameType::Error, payload.data(),
                   payload.size());
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        ++stats_.sessionsRejected;
        if (ec == ErrorCode::RetryAfter)
            ++stats_.retryAfterSent;
        ServeMetrics::instance().rejected.inc();
        if (ec == ErrorCode::RetryAfter)
            ServeMetrics::instance().retryAfterSent.inc();
    }
    session->closed.store(true);
}

void
Server::handleReadable(const std::shared_ptr<Session> &session)
{
    if (session->closed.load())
        return;

    uint8_t buf[64 * 1024];
    const ssize_t n = ::read(session->fd, buf, sizeof(buf));
    if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN))
            return;
        // EOF or read error: the connection is gone mid-session.  If
        // the pump still owns the session (task in flight, or Finish
        // already queued), leave it alone — the fd stays readable, so
        // this branch re-runs every poll iteration until the pump has
        // either replied (result then sits in the spool) or drained
        // every received byte, at which point the pipeline can be
        // parked for a resume.  Parking instead of rejecting is what
        // turns a dropped connection into a recoverable event.
        bool pump_owns;
        {
            std::lock_guard<std::mutex> qlock(session->mutex);
            pump_owns =
                session->taskInFlight || session->finishRequested;
        }
        if (pump_owns)
            return;
        if (session->openSeen && !session->replied.load() &&
            session->pipeline != nullptr &&
            !session->pipeline->poisoned() && !stopping_.load()) {
            parkSession(session);
            return;
        }
        if (session->socketBytesRead > 0 &&
            !session->replied.exchange(true)) {
            // The connection spoke, then died with nothing said (and
            // no parkable session): an abort, distinct from the
            // typed-Error rejections.  Covers both an unparkable
            // opened session and a handshake torn mid-Open — the
            // reconnect herd's signature.  Zero-byte connects (port
            // scanners, TCP health checks) stay uncounted.
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            ++stats_.sessionsAborted;
            ServeMetrics::instance().aborted.inc();
        }
        session->closed.store(true);
        return;
    }

    session->lastProgressAt = std::chrono::steady_clock::now();
    session->socketBytesRead += static_cast<uint64_t>(n);
    session->inbox.insert(session->inbox.end(), buf, buf + n);

    for (;;) {
        Frame frame;
        std::string parse_error;
        const long consumed =
            parseFrame(session->inbox.data(), session->inbox.size(),
                       frame, &parse_error);
        if (consumed == 0)
            return; // incomplete; wait for more bytes
        if (consumed < 0) {
            {
                std::lock_guard<std::mutex> lock(sessionsMutex_);
                ++stats_.framesMalformed;
            }
            ServeMetrics::instance().framesMalformed.inc();
            rejectAndClose(session,
                           static_cast<uint32_t>(ErrorCode::Malformed),
                           parse_error);
            return;
        }
        session->inbox.erase(session->inbox.begin(),
                             session->inbox.begin() + consumed);

        switch (frame.type) {
        case FrameType::Open: {
            if (session->openSeen ||
                frame.payload.size() != sizeof(OpenRequest)) {
                rejectAndClose(
                    session,
                    static_cast<uint32_t>(ErrorCode::Malformed),
                    session->openSeen ? "duplicate Open frame"
                                      : "bad Open payload");
                return;
            }
            OpenRequest open{};
            std::memcpy(&open, frame.payload.data(), sizeof(open));
            handleOpen(session, open);
            if (session->closed.load() || session->replied.load())
                return;
            break;
        }
        case FrameType::Data: {
            if (!session->openSeen) {
                rejectAndClose(
                    session,
                    static_cast<uint32_t>(ErrorCode::Malformed),
                    "Data before Open");
                return;
            }
            const std::size_t bytes = frame.payload.size();
            {
                std::lock_guard<std::mutex> qlock(session->mutex);
                session->pending.push_back(std::move(frame.payload));
                session->pendingBytes += bytes;
            }
            {
                std::lock_guard<std::mutex> lock(sessionsMutex_);
                stats_.bytesIngested += bytes;
            }
            ServeMetrics::instance().bytesIngested.add(bytes);
            schedulePump(session);
            break;
        }
        case FrameType::Finish: {
            if (!session->openSeen) {
                rejectAndClose(
                    session,
                    static_cast<uint32_t>(ErrorCode::Malformed),
                    "Finish before Open");
                return;
            }
            {
                std::lock_guard<std::mutex> qlock(session->mutex);
                session->finishRequested = true;
            }
            schedulePump(session);
            break;
        }
        case FrameType::StatsRequest: {
            std::string text;
            {
                std::lock_guard<std::mutex> lock(sessionsMutex_);
                text += "emprof.serve.sessions_accepted " +
                        std::to_string(stats_.sessionsAccepted) + "\n";
                text += "emprof.serve.sessions_completed " +
                        std::to_string(stats_.sessionsCompleted) +
                        "\n";
                text += "emprof.serve.sessions_rejected " +
                        std::to_string(stats_.sessionsRejected) + "\n";
                text += "emprof.serve.sessions_active " +
                        std::to_string(stats_.sessionsActive) + "\n";
                text += "emprof.serve.bytes_ingested " +
                        std::to_string(stats_.bytesIngested) + "\n";
                text += "emprof.serve.frames_malformed " +
                        std::to_string(stats_.framesMalformed) + "\n";
                text += "emprof.serve.sessions_parked " +
                        std::to_string(stats_.sessionsParked) + "\n";
                text += "emprof.serve.sessions_resumed " +
                        std::to_string(stats_.sessionsResumed) + "\n";
                text += "emprof.serve.results_spooled " +
                        std::to_string(stats_.resultsSpooled) + "\n";
                text += "emprof.serve.results_served_from_spool " +
                        std::to_string(stats_.resultsServedFromSpool) +
                        "\n";
                text += "emprof.serve.sessions_aborted " +
                        std::to_string(stats_.sessionsAborted) + "\n";
                text += "emprof.serve.sessions_timed_out " +
                        std::to_string(stats_.sessionsTimedOut) + "\n";
                text += "emprof.serve.sessions_shed " +
                        std::to_string(stats_.sessionsShed) + "\n";
                text += "emprof.serve.retry_after_sent " +
                        std::to_string(stats_.retryAfterSent) + "\n";
                text += "emprof.serve.accept_fd_exhausted " +
                        std::to_string(stats_.acceptFdExhausted) +
                        "\n";
                text += "emprof.serve.results_spool_failed " +
                        std::to_string(stats_.resultsSpoolFailed) +
                        "\n";
                text += "emprof.serve.parked_evicted " +
                        std::to_string(stats_.parkedEvicted) + "\n";
                text += "emprof.serve.parked_expired " +
                        std::to_string(stats_.parkedExpired) + "\n";
            }
            if (obs::MetricsRegistry::enabled())
                text += obs::metricsToText();
            writeFrame(session->fd, FrameType::Stats, text.data(),
                       text.size());
            session->replied.store(true);
            session->closed.store(true);
            return;
        }
        case FrameType::HealthRequest: {
            // Answered before any Open and without touching session
            // accounting, so a load balancer can probe a server that
            // is far too loaded to admit anything.
            const uint8_t state =
                static_cast<uint8_t>(healthStateNow());
            writeFrame(session->fd, FrameType::Health, &state, 1);
            session->replied.store(true);
            session->closed.store(true);
            return;
        }
        default:
            rejectAndClose(session,
                           static_cast<uint32_t>(ErrorCode::Malformed),
                           "unexpected frame type from client");
            return;
        }
    }
}

void
Server::handleOpen(const std::shared_ptr<Session> &session,
                   const OpenRequest &open)
{
    SessionId id;
    std::memcpy(id.data(), open.sessionId, id.size());
    const bool want_resume = (open.flags & kOpenResume) != 0;
    const bool resilient = (open.flags & kOpenResilient) != 0;

    // A session that already finished in a previous connection (or a
    // previous daemon life): acknowledge Complete and replay the
    // spooled Report payload verbatim — bit-identity by construction.
    if (want_resume && !sessionIdIsZero(id) && spool_.has(id)) {
        uint32_t status = 0;
        std::vector<uint8_t> payload;
        std::string why;
        if (spool_.fetch(id, status, payload, &why)) {
            session->replied.store(true);
            {
                std::lock_guard<std::mutex> lock(sessionsMutex_);
                ++stats_.resultsServedFromSpool;
            }
            ServeMetrics::instance().servedFromSpool.inc();
            const auto ack =
                encodeOpenAckPayload(id, 0, SessionState::Complete);
            if (writeFrame(session->fd, FrameType::OpenAck, ack.data(),
                           ack.size()))
                writeFrame(session->fd, FrameType::Report,
                           payload.data(), payload.size());
            session->closed.store(true);
            return;
        }
        // Spooled record damaged at rest: fall through to a fresh
        // upload; the re-analysis replaces the bad record.
    }

    std::size_t active;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        active = stats_.sessionsActive;
    }
    if (active >= config_.maxSessions) {
        rejectAndClose(session,
                       static_cast<uint32_t>(ErrorCode::Busy),
                       "session limit reached (" +
                           std::to_string(config_.maxSessions) + ")");
        return;
    }

    // A parked pipeline: validate the client's idea of the offset
    // against ours, re-attach, and tell it where to resume from.
    if (want_resume && !sessionIdIsZero(id)) {
        const std::string hex = sessionIdToHex(id);
        std::shared_ptr<Parked> parked;
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            const auto it = parked_.find(hex);
            if (it != parked_.end()) {
                parked = std::move(it->second);
                parked_.erase(it);
            }
        }
        if (parked) {
            std::string bad;
            if (open.resumeFrom != kResumeQuery &&
                open.resumeFrom != parked->resumeOffset)
                bad = "resume offset " +
                      std::to_string(open.resumeFrom) +
                      " does not match the durable offset " +
                      std::to_string(parked->resumeOffset) +
                      " for session " + hex;
            else if (parked->resilient != resilient)
                bad = "resilience mode differs from the parked "
                      "session " +
                      hex;
            if (!bad.empty()) {
                // Put the pipeline back: a corrected retry may follow.
                {
                    std::lock_guard<std::mutex> lock(sessionsMutex_);
                    parked_[hex] = std::move(parked);
                }
                rejectAndClose(
                    session,
                    static_cast<uint32_t>(ErrorCode::BadResume), bad);
                return;
            }
            const uint64_t offset = parked->resumeOffset;
            session->pipeline = std::move(parked->pipeline);
            session->id = id;
            session->openSeen = true;
            {
                std::lock_guard<std::mutex> lock(sessionsMutex_);
                ++stats_.sessionsAccepted;
                ++stats_.sessionsResumed;
                ++stats_.sessionsActive;
            }
            const auto &metrics = ServeMetrics::instance();
            metrics.accepted.inc();
            metrics.resumed.inc();
            const auto ack = encodeOpenAckPayload(
                id, offset, SessionState::Resumed);
            writeFrame(session->fd, FrameType::OpenAck, ack.data(),
                       ack.size());
            return;
        }
        // Nothing parked and nothing spooled.  An explicit non-zero
        // offset cannot be honoured — the client would silently skip
        // bytes we never saw; make it a typed error.  kResumeQuery
        // (or 0) degrades gracefully to a fresh upload: the daemon
        // may simply have restarted.
        if (open.resumeFrom != kResumeQuery && open.resumeFrom != 0) {
            rejectAndClose(
                session, static_cast<uint32_t>(ErrorCode::BadResume),
                "unknown session " + hex +
                    " cannot resume at offset " +
                    std::to_string(open.resumeFrom));
            return;
        }
    }

    // Admission control: FRESH sessions only — a resume was already
    // admitted above because it *reduces* load (it frees a parked
    // slot and lets a shed upload finish instead of restarting).
    if (config_.watermarks.anyEnabled()) {
        const LoadSnapshot snap = currentSnapshot();
        if (governor_.classify(snap) != LoadGovernor::Level::Normal) {
            const uint32_t hint = governor_.suggestedBackoffMs(snap);
            rejectAndClose(
                session,
                static_cast<uint32_t>(ErrorCode::RetryAfter),
                "server overloaded; retry in " +
                    std::to_string(hint) + " ms",
                hint);
            return;
        }
    }

    // Fresh session (possibly keeping a client-proposed id so a later
    // resume can find it).
    if (sessionIdIsZero(id))
        id = randomSessionId();
    profiler::EmProfConfig analysis = config_.analysis;
    analysis.signal.enabled = resilient;
    session->pipeline = std::make_unique<SessionPipeline>(
        analysis, config_.spanSamples);
    session->id = id;
    session->openSeen = true;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        ++stats_.sessionsAccepted;
        ++stats_.sessionsActive;
    }
    ServeMetrics::instance().accepted.inc();
    const auto ack = encodeOpenAckPayload(id, 0, SessionState::Fresh);
    writeFrame(session->fd, FrameType::OpenAck, ack.data(),
               ack.size());
}

void
Server::schedulePump(const std::shared_ptr<Session> &session)
{
    {
        std::lock_guard<std::mutex> qlock(session->mutex);
        if (session->taskInFlight)
            return; // the running pump will see the new work
        if (session->pending.empty() && !session->finishRequested)
            return;
        session->taskInFlight = true;
    }
    // The future is intentionally dropped: the pump reports through
    // the socket and the session flags, never through the future.  A
    // PoolDrained rejection can only happen during stop(), which
    // replies Shutdown to every unanswered session itself.
    (void)pool_->submit([this, session] { pump(session); });
}

void
Server::pump(std::shared_ptr<Session> session)
{
    const auto abandon = [&](ErrorCode code,
                             const std::string &message,
                             uint32_t retryAfterMs = 0) {
        if (!session->replied.exchange(true)) {
            setSendTimeoutMs(session->fd, kShedWriteTimeoutMs);
            const auto payload =
                code == ErrorCode::RetryAfter
                    ? encodeRetryAfterPayload(retryAfterMs, message)
                    : encodeErrorPayload(code, message);
            writeFrame(session->fd, FrameType::Error, payload.data(),
                       payload.size());
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            ++stats_.sessionsRejected;
            if (code == ErrorCode::RetryAfter)
                ++stats_.retryAfterSent;
            ServeMetrics::instance().rejected.inc();
            if (code == ErrorCode::RetryAfter)
                ServeMetrics::instance().retryAfterSent.inc();
        }
        {
            std::lock_guard<std::mutex> qlock(session->mutex);
            session->pending.clear();
            session->pendingBytes = 0;
            session->taskInFlight = false;
        }
        session->closed.store(true);
        wake();
    };

    try {
        for (;;) {
            if (session->aborted.load()) {
                // A shed (deadline/hard watermark) names its own
                // typed error; plain aborts are a shutdown.
                ErrorCode code = ErrorCode::Shutdown;
                std::string message = "server shutting down";
                uint32_t hint = 0;
                {
                    std::lock_guard<std::mutex> qlock(session->mutex);
                    if (session->shedCode != 0) {
                        code =
                            static_cast<ErrorCode>(session->shedCode);
                        message = session->shedMessage;
                        hint = session->shedRetryAfterMs;
                    }
                }
                return abandon(code, message, hint);
            }

            std::vector<uint8_t> item;
            bool do_finish = false;
            bool crossed_resume = false;
            {
                std::lock_guard<std::mutex> qlock(session->mutex);
                if (!session->pending.empty()) {
                    item = std::move(session->pending.front());
                    session->pending.pop_front();
                    const std::size_t before = session->pendingBytes;
                    session->pendingBytes -= item.size();
                    const std::size_t half =
                        config_.sessionBufferBytes / 2;
                    crossed_resume = before > half &&
                                     session->pendingBytes <= half;
                } else if (session->finishRequested) {
                    session->finishRequested = false;
                    do_finish = true;
                } else {
                    session->taskInFlight = false;
                    return; // re-armed by the next Data/Finish
                }
            }

            if (do_finish) {
                profiler::ProfileResult result;
                std::string why;
                if (!session->pipeline->finish(result, &why))
                    return abandon(ErrorCode::Malformed, why);

                const auto &quality = result.report.quality;
                const bool degraded =
                    quality.enabled && quality.coverageFraction < 1.0;
                const uint32_t status = degraded ? 3u : 0u;
                const auto payload = encodeReportPayload(
                    status,
                    session->pipeline->decoder().info().totalSamples,
                    quality.enabled ? quality.coverageFraction : 1.0,
                    result.events,
                    result.report.toText("served capture"));
                // Durability BEFORE delivery: the result is fsync'd
                // into the spool before the Report frame is written,
                // so a reply lost to a dead socket (or a daemon crash
                // right after this point) is recoverable — the client
                // resumes by id and is served from the spool.
                if (spool_.isOpen()) {
                    std::string spool_error;
                    if (spool_.append(session->id, status, payload,
                                      &spool_error)) {
                        {
                            std::lock_guard<std::mutex> lock(
                                sessionsMutex_);
                            ++stats_.resultsSpooled;
                        }
                        ServeMetrics::instance().spooled.inc();
                    } else {
                        // A spool failure (disk full, ...) must not
                        // take the live path down: the reply still
                        // goes out, only the crash-recovery guarantee
                        // is lost.  Counted, and logged once on the
                        // healthy→degraded transition.
                        bool first;
                        {
                            std::lock_guard<std::mutex> lock(
                                sessionsMutex_);
                            first = stats_.resultsSpoolFailed == 0;
                            ++stats_.resultsSpoolFailed;
                        }
                        ServeMetrics::instance().spoolFailed.inc();
                        if (first)
                            std::fprintf(
                                stderr,
                                "emprof_served: result spool append "
                                "failed (%s); serving non-durably\n",
                                spool_error.c_str());
                    }
                }
                // Account the completion BEFORE the reply leaves the
                // socket: a client that has its Report in hand must
                // see the counter already bumped.  A failed write
                // means the peer hung up after the analysis finished —
                // the session still completed.
                session->replied.store(true);
                {
                    std::lock_guard<std::mutex> lock(sessionsMutex_);
                    ++stats_.sessionsCompleted;
                }
                const auto &metrics = ServeMetrics::instance();
                metrics.completed.inc();
                std::string write_error;
                (void)writeFrame(session->fd, FrameType::Report,
                                 payload.data(), payload.size(),
                                 &write_error);
                metrics.sessionUs.observe(
                    elapsedUs(session->openedAt));
                {
                    std::lock_guard<std::mutex> qlock(session->mutex);
                    session->taskInFlight = false;
                }
                session->closed.store(true);
                wake();
                return;
            }

            const auto t0 = std::chrono::steady_clock::now();
            std::string why;
            const bool ok = session->pipeline->feed(
                item.data(), item.size(), &why);
            if (obs::MetricsRegistry::enabled())
                ServeMetrics::instance().feedUs.observe(
                    elapsedUs(t0));
            if (!ok)
                return abandon(ErrorCode::Malformed, why);
            if (crossed_resume)
                wake(); // socket may resume reading
        }
    } catch (const std::exception &e) {
        return abandon(ErrorCode::Internal,
                       std::string("analysis failed: ") + e.what());
    }
}

LoadSnapshot
Server::currentSnapshot()
{
    LoadSnapshot snap;
    snap.queueBytes = lastQueueBytes_;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        snap.activeSessions = stats_.sessionsActive;
        snap.parked = parked_.size();
        // Sessions (incl. pre-Open connections) + listeners + the
        // wake pipe and the emergency reserve.
        snap.connections =
            sessions_.size() + listeners_.size() + 3;
    }
    snap.poolQueueDepth = pool_ ? pool_->queueDepth() : 0;
    return snap;
}

HealthState
Server::healthStateNow() const
{
    if (stopping_.load())
        return HealthState::Draining;
    switch (lastLevel_) {
    case LoadGovernor::Level::Hard:
        return HealthState::Shedding;
    case LoadGovernor::Level::Soft:
        return HealthState::Backoff;
    case LoadGovernor::Level::Normal:
        break;
    }
    return HealthState::Live;
}

void
Server::shedSession(const std::shared_ptr<Session> &session,
                    ErrorCode code, const std::string &message,
                    uint32_t retryAfterMs)
{
    bool pump_owns;
    {
        std::lock_guard<std::mutex> qlock(session->mutex);
        pump_owns = session->taskInFlight || session->finishRequested;
        if (pump_owns) {
            session->shedCode = static_cast<uint32_t>(code);
            session->shedMessage = message;
            session->shedRetryAfterMs = retryAfterMs;
        }
    }
    if (pump_owns) {
        // The pump owns the socket; its abort path replies with the
        // typed error above.  (If it instead completes the report
        // first, better still — nothing was lost.)
        session->aborted.store(true);
        return;
    }
    if (!session->replied.exchange(true)) {
        setSendTimeoutMs(session->fd, kShedWriteTimeoutMs);
        const auto payload =
            code == ErrorCode::RetryAfter
                ? encodeRetryAfterPayload(retryAfterMs, message)
                : encodeErrorPayload(code, message);
        writeFrame(session->fd, FrameType::Error, payload.data(),
                   payload.size());
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            ++stats_.sessionsRejected;
            if (code == ErrorCode::RetryAfter)
                ++stats_.retryAfterSent;
        }
        ServeMetrics::instance().rejected.inc();
        if (code == ErrorCode::RetryAfter)
            ServeMetrics::instance().retryAfterSent.inc();
    }
    // Shed ≠ forgotten: park the pipeline so the client can resume
    // once the storm passes, upload already half done.  (The EOF
    // parking invariant holds here too: !pump_owns on the I/O thread
    // means the pending queue is drained.)
    if (session->openSeen && session->pipeline != nullptr &&
        !session->pipeline->poisoned() && !stopping_.load())
        parkSession(session);
    else
        session->closed.store(true);
}

void
Server::enforceOverload(
    const std::vector<std::shared_ptr<Session>> &polled)
{
    const bool time_checks = config_.idleTimeoutSeconds > 0 ||
                             config_.sessionDeadlineSeconds > 0 ||
                             config_.minRateBytesPerSec > 0;
    const bool watermarks = config_.watermarks.anyEnabled();
    if (!time_checks && !watermarks)
        return; // defaults-off: strictly inert

    const auto now = std::chrono::steady_clock::now();
    const auto seconds_since = [&](
        std::chrono::steady_clock::time_point t) {
        return std::chrono::duration<double>(now - t).count();
    };

    if (time_checks) {
        for (const auto &s : polled) {
            // aborted = a verdict is already pending on the pump's
            // abort path; re-shedding every tick until a starved pump
            // gets scheduled would count the same session dozens of
            // times over.
            if (s->closed.load() || s->replied.load() ||
                s->aborted.load())
                continue;
            bool pump_owns;
            bool finish_requested;
            {
                std::lock_guard<std::mutex> qlock(s->mutex);
                pump_owns = s->taskInFlight || s->finishRequested;
                finish_requested = s->finishRequested;
            }
            const bool server_side_stall = pump_owns || s->suspended;
            if (server_side_stall) {
                // Analysis or backpressure is the bottleneck — our
                // doing, not the client's.  Restart the idle clock so
                // the silence is never held against it.
                s->lastProgressAt = now;
            }
            // The rate window, by contrast, pauses only while reads
            // are off (backpressure) or the upload is over (Finish
            // queued).  A pump merely in flight does not stop bytes
            // arriving — and a trickler's sips keep one in flight at
            // almost every tick, so excusing it would let slow-loris
            // reset the window indefinitely.
            if (s->suspended || finish_requested) {
                s->rateWindowStart = now;
                s->rateWindowBase = s->socketBytesRead;
            }

            // The wall-clock deadline binds regardless of whose
            // fault the elapsed time is.
            if (config_.sessionDeadlineSeconds > 0 &&
                seconds_since(s->openedAt) >=
                    config_.sessionDeadlineSeconds) {
                {
                    std::lock_guard<std::mutex> lock(sessionsMutex_);
                    ++stats_.sessionsTimedOut;
                }
                ServeMetrics::instance().timedOut.inc();
                shedSession(s, ErrorCode::IdleTimeout,
                            "session deadline exceeded", 0);
                continue;
            }

            if (!server_side_stall &&
                config_.idleTimeoutSeconds > 0 &&
                seconds_since(s->lastProgressAt) >=
                    config_.idleTimeoutSeconds) {
                {
                    std::lock_guard<std::mutex> lock(sessionsMutex_);
                    ++stats_.sessionsTimedOut;
                }
                ServeMetrics::instance().timedOut.inc();
                shedSession(s, ErrorCode::IdleTimeout,
                            "no upload progress; parked for resume",
                            0);
                continue;
            }

            if (!s->suspended && !finish_requested &&
                config_.minRateBytesPerSec > 0 && s->openSeen) {
                const double window =
                    config_.minRateWindowSeconds > 0
                        ? config_.minRateWindowSeconds
                        : 10.0;
                const double elapsed =
                    seconds_since(s->rateWindowStart);
                if (elapsed >= window) {
                    const double rate =
                        static_cast<double>(s->socketBytesRead -
                                            s->rateWindowBase) /
                        elapsed;
                    if (rate < config_.minRateBytesPerSec) {
                        {
                            std::lock_guard<std::mutex> lock(
                                sessionsMutex_);
                            ++stats_.sessionsTimedOut;
                        }
                        ServeMetrics::instance().timedOut.inc();
                        shedSession(s, ErrorCode::IdleTimeout,
                                    "upload rate below the floor; "
                                    "parked for resume",
                                    0);
                        continue;
                    }
                    s->rateWindowStart = now;
                    s->rateWindowBase = s->socketBytesRead;
                }
            }
        }
    }

    if (!watermarks) {
        lastLevel_ = LoadGovernor::Level::Normal;
        return;
    }
    const LoadSnapshot snap = currentSnapshot();
    lastLevel_ = governor_.classify(snap);
    if (lastLevel_ != LoadGovernor::Level::Hard)
        return;

    // Hard overload: shed established sessions, most-stalled first —
    // the sessions most likely to be hostile, and whose eviction
    // frees the most slot-time per report lost.
    uint64_t target = governor_.shedTarget(snap);
    if (target == 0)
        return;
    std::vector<std::shared_ptr<Session>> candidates;
    for (const auto &s : polled)
        if (!s->closed.load() && !s->replied.load() && s->openSeen &&
            !s->aborted.load())
            candidates.push_back(s);
    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) {
                  return a->lastProgressAt < b->lastProgressAt;
              });
    const uint32_t hint = governor_.suggestedBackoffMs(snap);
    uint64_t shed_count = 0;
    for (const auto &s : candidates) {
        if (shed_count >= target)
            break;
        shedSession(s, ErrorCode::RetryAfter,
                    "load shed under hard watermark; resume in " +
                        std::to_string(hint) + " ms",
                    hint);
        ++shed_count;
    }
    if (shed_count > 0) {
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            stats_.sessionsShed += shed_count;
        }
        ServeMetrics::instance().shed.add(
            static_cast<int64_t>(shed_count));
    }
}

} // namespace emprof::serve
