/**
 * @file
 * The EMPROF ingest server: many concurrent capture-upload sessions
 * over unix and/or TCP sockets, analysed incrementally on a shared
 * thread pool.
 *
 * Threading model (see DESIGN.md §14 for the diagram):
 *
 *  - ONE I/O thread owns every socket: it accepts connections, reads
 *    bytes, parses EMFR frames, and enqueues Data payloads onto the
 *    owning session's pending queue.  The poll set is rebuilt each
 *    iteration from session state, and a self-pipe lets workers wake
 *    it (to resume a suspended socket or reap a finished session).
 *  - Analysis runs on the shared common::ThreadPool.  At most ONE
 *    task per session is in flight at a time (the "pump"): it drains
 *    the session's pending queue through its SessionPipeline, writes
 *    the Report/Error frames itself (blocking, MSG_NOSIGNAL), and
 *    reschedules itself only via new arrivals.  Chunks of one session
 *    are therefore strictly ordered while different sessions run in
 *    parallel — exactly the invariant SessionPipeline requires.
 *
 * Backpressure: each session's pending queue is byte-bounded.  When a
 * client uploads faster than analysis drains, the I/O thread stops
 * polling that socket for reads at the high watermark; the kernel
 * socket buffer then fills and the sender's write() blocks — flow
 * control all the way back to the device, with per-session memory
 * capped at queue budget + one span + halo (see session_pipeline.hpp).
 * Reads resume once the pump drains below half the budget.
 *
 * Failure containment: a malformed frame or bad EMCAP stream yields a
 * typed Error frame and quarantines only that session — the socket is
 * closed, counters are incremented, and every other session is
 * untouched.  Analysis exceptions surface as ErrorCode::Internal the
 * same way.  The server process never dies on client input.
 *
 * Shutdown: stop() closes the listeners, asks in-flight sessions to
 * abort (they reply ErrorCode::Shutdown), joins the I/O thread and
 * drains the pool (ThreadPool::drain()), so stop() returning means no
 * server thread exists and every fd is closed.
 *
 * Disconnect safety (DESIGN.md §15): a connection that dies mid-upload
 * no longer loses the session.  The I/O thread PARKS the session's
 * pipeline (decoder + stitcher state, keyed by session id) once the
 * pump has drained every received byte; a reconnecting client re-sends
 * the v2 Open with its session id and the OpenAck echoes the
 * element-aligned resume offset, so the upload continues bit-
 * identically.  Parked pipelines expire after resumeTtlSeconds.
 * Finished reports are appended (fsync'd) to the durable ResultSpool
 * BEFORE the Report frame is written, so a client whose connection
 * died between analysis and delivery — or a daemon restart — can
 * still collect the result: a resume of a spooled session is answered
 * with SessionState::Complete plus the verbatim spooled payload.
 */

#ifndef EMPROF_SERVE_SERVER_HPP
#define EMPROF_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "profiler/profiler.hpp"
#include "serve/governor.hpp"
#include "serve/spool.hpp"

namespace emprof::serve {

struct ServerConfig
{
    /** Unix-domain listener path; empty disables it. */
    std::string unixPath;

    /** TCP listener (loopback) port; -1 disables, 0 picks a free
     *  port (see Server::tcpPort()). */
    int tcpPort = -1;

    /** Analysis worker threads; 0 means hardwareThreads(). */
    std::size_t threads = 0;

    /** Concurrent session cap; further Opens get ErrorCode::Busy. */
    std::size_t maxSessions = 64;

    /**
     * Per-session pending-queue budget in bytes: the high watermark
     * where the server stops reading that socket (backpressure).
     */
    std::size_t sessionBufferBytes = std::size_t{8} << 20;

    /** Analysis span length; 0 = auto (see SessionPipeline). */
    std::size_t spanSamples = 0;

    /** Durable result spool directory; empty disables spooling. */
    std::string spoolDir;

    /** Spool retention: live (un-collected) results kept. */
    uint64_t spoolRetain = 4096;

    /** How long a disconnected session's pipeline stays parked. */
    double resumeTtlSeconds = 300;

    /** Concurrent parked-pipeline cap; past it the oldest is dropped
     *  (its client restarts from offset 0 — correct, just slower). */
    std::size_t maxParked = 256;

    // ---- Overload hardening (all 0 = disabled: a default-configured
    // ---- server behaves bit-for-bit as before) ----

    /** Shed a session after this long with no bytes arriving on its
     *  socket (typed ErrorCode::IdleTimeout; the pipeline is parked,
     *  so a resume continues the upload).  Suspended (backpressured)
     *  and analysis-owned sessions are exempt — their stall is the
     *  server's doing, not the client's. */
    double idleTimeoutSeconds = 0;

    /** Hard wall-clock bound on a session's total lifetime, pump
     *  state notwithstanding. */
    double sessionDeadlineSeconds = 0;

    /** Slow-sender watchdog: minimum upload rate (bytes/sec) over a
     *  sliding window of minRateWindowSeconds; below it the session
     *  is shed like an idle one.  Defeats slow-loris clients that
     *  trickle just enough to dodge the idle timeout. */
    double minRateBytesPerSec = 0;
    double minRateWindowSeconds = 10;

    /** Admission-control / load-shedding watermarks (governor.hpp);
     *  every 0 disables that check. */
    LoadWatermarks watermarks;

    /**
     * Base analysis config for every session.  sampleRateHz/clockHz
     * are taken from each uploaded capture's header; the signal
     * (resilience) layer is enabled per session by the Open flag.
     */
    profiler::EmProfConfig analysis;
};

/** Monotonic counters for tests and the status line (obs-free). */
struct ServerStats
{
    uint64_t sessionsAccepted = 0;
    uint64_t sessionsCompleted = 0; ///< Report sent (ok or degraded)
    uint64_t sessionsRejected = 0;  ///< a typed Error frame was sent
    uint64_t sessionsAborted = 0;   ///< connection died, no reply sent
    uint64_t sessionsActive = 0;
    uint64_t bytesIngested = 0;   ///< Data payload bytes accepted
    uint64_t framesMalformed = 0; ///< frame-layer rejections
    uint64_t sessionsParked = 0;  ///< connection died, pipeline kept
    uint64_t sessionsResumed = 0; ///< parked pipeline reattached
    uint64_t resultsSpooled = 0;  ///< reports made durable on disk
    uint64_t resultsServedFromSpool = 0; ///< resumes answered Complete

    // ---- overload hardening ----
    uint64_t sessionsTimedOut = 0; ///< idle/deadline/rate-floor sheds
    uint64_t sessionsShed = 0;     ///< hard-watermark load sheds
    uint64_t retryAfterSent = 0;   ///< RetryAfter rejections sent
    uint64_t acceptFdExhausted = 0; ///< EMFILE/ENFILE on accept()
    uint64_t resultsSpoolFailed = 0; ///< appends that degraded to
                                     ///< non-durable serving
    uint64_t parkedEvicted = 0; ///< maxParked pushed one out early
    uint64_t parkedExpired = 0; ///< resume TTL ran out
};

class Server
{
  public:
    explicit Server(ServerConfig config);

    /** stop() implicitly. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the listeners and start the I/O thread + pool.
     *
     * @retval false Could not bind/listen; @p error says why.
     */
    bool start(std::string *error = nullptr);

    /** Graceful shutdown; idempotent.  See file comment. */
    void stop();

    bool running() const { return running_.load(); }

    /** Actual TCP port (after start() with tcpPort == 0). */
    int tcpPort() const { return boundTcpPort_; }

    ServerStats stats() const;

    /** The durable result spool (closed unless spoolDir was set). */
    const ResultSpool &spool() const { return spool_; }

  private:
    struct Session;
    struct Listener;
    struct Parked;

    void ioLoop();
    void acceptPending(int listenFd);
    void handleReadable(const std::shared_ptr<Session> &session);
    void handleOpen(const std::shared_ptr<Session> &session,
                    const OpenRequest &open);
    void pump(std::shared_ptr<Session> session);
    void schedulePump(const std::shared_ptr<Session> &session);
    void rejectAndClose(const std::shared_ptr<Session> &session,
                        uint32_t code, const std::string &message,
                        uint32_t retryAfterMs = 0);
    void parkSession(const std::shared_ptr<Session> &session);
    void purgeParked();
    void wake();

    // ---- overload hardening (all I/O-thread-only) ----

    /** One tick's resource picture for the LoadGovernor. */
    LoadSnapshot currentSnapshot();

    /** Idle/deadline/rate enforcement + watermark classification and
     *  hard shedding; runs once per poll tick over @p polled. */
    void enforceOverload(
        const std::vector<std::shared_ptr<Session>> &polled);

    /** Dispose of one session with a typed error: direct write +
     *  park when the I/O thread owns it, via the pump's abort path
     *  when analysis does. */
    void shedSession(const std::shared_ptr<Session> &session,
                     ErrorCode code, const std::string &message,
                     uint32_t retryAfterMs);

    /** The one-byte HealthRequest answer for this tick. */
    HealthState healthStateNow() const;

    ServerConfig config_;
    std::unique_ptr<common::ThreadPool> pool_;
    std::thread ioThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::vector<Listener> listeners_;
    int boundTcpPort_ = -1;
    int wakePipe_[2] = {-1, -1};

    LoadGovernor governor_;

    /** Reserved fd (/dev/null): on EMFILE it is released so ONE
     *  connection can be accepted, told RetryAfter, and closed —
     *  instead of the whole backlog starving silently. */
    int emergencyFd_ = -1;

    /** I/O-thread-only: listeners sit out of the poll set until this
     *  instant (set on accept errors so a ready-but-unacceptable
     *  listener cannot spin the loop hot). */
    std::chrono::steady_clock::time_point listenerMuteUntil_{};

    /** I/O-thread-only: last tick's aggregate queue bytes (feeds the
     *  governor snapshot) and overload level (feeds healthz). */
    std::size_t lastQueueBytes_ = 0;
    LoadGovernor::Level lastLevel_ = LoadGovernor::Level::Normal;

    mutable std::mutex sessionsMutex_;
    std::vector<std::shared_ptr<Session>> sessions_;

    /** Pipelines of disconnected sessions, keyed by session-id hex;
     *  under sessionsMutex_ (entries destroyed outside the lock). */
    std::map<std::string, std::shared_ptr<Parked>> parked_;

    ResultSpool spool_;

    /** stats(), under sessionsMutex_. */
    ServerStats stats_;
};

} // namespace emprof::serve

#endif // EMPROF_SERVE_SERVER_HPP
