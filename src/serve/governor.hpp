/**
 * @file
 * Admission control and load shedding for the ingest service.
 *
 * The server's resources are bounded — session slots, buffered queue
 * bytes, parked pipelines, pool queue depth, and file descriptors —
 * but nothing ties them together: before this layer, the only
 * admission decision was the binary maxSessions check, so a fleet
 * reconnecting after an outage would be told Busy (try immediately)
 * and hammer the listener in lockstep.
 *
 * The LoadGovernor turns the resource picture into a three-level
 * classification evaluated once per poll tick:
 *
 *   Normal   below every soft watermark; admit everything.
 *   Soft     some soft watermark crossed; fresh Opens are answered
 *            with a typed RetryAfter carrying a backoff hint sized to
 *            the overload severity (the deeper past the watermark,
 *            the longer the hint).  Resumes are still admitted — they
 *            free a parked slot and let shed sessions finish.
 *   Hard     a hard watermark crossed (or the fd budget breached);
 *            in addition to RetryAfter on fresh Opens the server
 *            sheds established sessions, most-stalled first, until
 *            back under the hard line.
 *
 * All watermarks default to 0 = disabled, so a default-configured
 * server behaves bit-for-bit as before (the `--resilient` precedent).
 * The governor is plain arithmetic over a snapshot — no locks, no
 * clock, no RNG (the *client* jitters the hint) — so it is trivially
 * unit-testable and safe to call from the I/O thread every tick.
 */

#ifndef EMPROF_SERVE_GOVERNOR_HPP
#define EMPROF_SERVE_GOVERNOR_HPP

#include <cstddef>
#include <cstdint>

namespace emprof::serve {

/** Watermark configuration; every 0 disables that check. */
struct LoadWatermarks
{
    /** Aggregate buffered session bytes (sum of per-session parse
     *  queues).  Soft: back off fresh Opens.  Hard: shed. */
    uint64_t softQueueBytes = 0;
    uint64_t hardQueueBytes = 0;

    /** Active (accepted, not closed) sessions. */
    uint64_t softSessions = 0;
    uint64_t hardSessions = 0;

    /** Open connections the process may hold before accepts are
     *  answered RetryAfter (a crude fd budget; breaching it is a
     *  Hard condition because EMFILE takes the listener down). */
    uint64_t fdBudget = 0;

    /** Analysis pool backlog (tasks queued, not running).  Soft
     *  only: a deep pool queue means admission outpaces analysis. */
    uint64_t softPoolQueue = 0;

    /** RetryAfter hint range: base at the soft line, max at/beyond
     *  2x the most-exceeded watermark. */
    uint32_t retryAfterBaseMs = 250;
    uint32_t retryAfterMaxMs = 10000;

    bool
    anyEnabled() const
    {
        return softQueueBytes != 0 || hardQueueBytes != 0 ||
               softSessions != 0 || hardSessions != 0 || fdBudget != 0 ||
               softPoolQueue != 0;
    }
};

/** One tick's resource picture, gathered by the I/O thread. */
struct LoadSnapshot
{
    uint64_t queueBytes = 0;     ///< aggregate buffered session bytes
    uint64_t activeSessions = 0; ///< accepted, not yet closed
    uint64_t connections = 0;    ///< fds: sessions + listeners + pipe
    uint64_t parked = 0;         ///< parked resumable pipelines
    uint64_t poolQueueDepth = 0; ///< analysis tasks waiting
};

class LoadGovernor
{
  public:
    enum class Level : uint8_t
    {
        Normal = 0,
        Soft = 1,
        Hard = 2,
    };

    LoadGovernor() = default;
    explicit LoadGovernor(const LoadWatermarks &marks) : marks_(marks) {}

    void configure(const LoadWatermarks &marks) { marks_ = marks; }
    const LoadWatermarks &watermarks() const { return marks_; }

    /** Classify @p snap against the watermarks. */
    Level classify(const LoadSnapshot &snap) const;

    /**
     * Server-suggested backoff for a rejected Open, in milliseconds.
     * Scales linearly from retryAfterBaseMs at the soft line to
     * retryAfterMaxMs at 2x the most-exceeded watermark; deterministic
     * (the client adds jitter).  Returns retryAfterBaseMs when called
     * below every soft line (callers only ask at Soft or worse).
     */
    uint32_t suggestedBackoffMs(const LoadSnapshot &snap) const;

    /**
     * How many established sessions a Hard tick should shed to get
     * the session count back under the hard line.  Queue-byte
     * overload sheds one per tick (each shed frees an unknown number
     * of bytes, so the loop re-evaluates next tick).  0 below Hard.
     */
    uint64_t shedTarget(const LoadSnapshot &snap) const;

  private:
    /** Largest (value / watermark) overload ratio; 1.0 = at a line. */
    double softExcessRatio(const LoadSnapshot &snap) const;

    LoadWatermarks marks_;
};

} // namespace emprof::serve

#endif // EMPROF_SERVE_GOVERNOR_HPP
