#include "serve/spool.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>

#include "serve/chaos.hpp"
#include "store/crc32c.hpp"

namespace emprof::serve {

namespace fs = std::filesystem;

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

uint64_t
nowUnixMillis()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string
segmentName(uint64_t seq)
{
    return "spool-" + std::to_string(seq) + ".emspool";
}

/** Parse "spool-<seq>.emspool"; false for anything else. */
bool
parseSegmentName(const std::string &name, uint64_t &seq)
{
    const std::string prefix = "spool-";
    const std::string suffix = ".emspool";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    const std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty())
        return false;
    seq = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return false;
        seq = seq * 10 + static_cast<uint64_t>(c - '0');
    }
    return true;
}

uint32_t
recordCrc(const SpoolRecordHeader &header,
          const uint8_t *payload, std::size_t payloadBytes)
{
    SpoolRecordHeader h = header;
    h.crc = 0;
    uint32_t crc = store::crc32c(0, &h, sizeof(h));
    return store::crc32c(crc, payload, payloadBytes);
}

/** Hard sanity bound: no legitimate report payload approaches this. */
constexpr uint32_t kMaxSpoolPayload = 256u << 20;

} // namespace

bool
ResultSpool::isOpen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return open_;
}

bool
ResultSpool::open(const Options &options, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (open_)
        return fail(error, "spool already open");
    if (options.dir.empty())
        return fail(error, "spool directory not set");

    std::error_code ec;
    fs::create_directories(options.dir, ec);
    if (ec)
        return fail(error, "cannot create spool directory " +
                               options.dir + ": " + ec.message());

    options_ = options;
    index_.clear();
    recovery_ = RecoveryStats{};
    nextOrder_ = 0;
    expiredByRetention_ = 0;

    // Recover every existing segment in append (seq) order so the
    // index ends up with the newest record per session and acks land
    // after the results they refer to.
    std::set<uint64_t> seqs;
    for (const auto &entry : fs::directory_iterator(options.dir, ec)) {
        uint64_t seq;
        if (entry.is_regular_file() &&
            parseSegmentName(entry.path().filename().string(), seq))
            seqs.insert(seq);
    }
    if (ec)
        return fail(error, "cannot list spool directory " +
                               options.dir + ": " + ec.message());
    uint64_t max_seq = 0;
    for (const uint64_t seq : seqs) {
        scanSegment((fs::path(options.dir) / segmentName(seq)).string(),
                    seq);
        max_seq = std::max(max_seq, seq + 1);
        ++recovery_.segments;
    }

    // A fresh process always appends to a NEW segment: a torn tail
    // left by a crash is never extended, only skipped (and GC'd).
    nextSeq_ = max_seq;
    activePath_.clear();
    activeBytes_ = 0;
    open_ = true;
    return true;
}

bool
ResultSpool::scanSegment(const std::string &path, uint64_t /*seq*/)
{
    common::io::CheckedFile file;
    if (!file.open(path, common::io::CheckedFile::Mode::Read))
        return false;
    uint64_t size = 0;
    if (!file.size(size, "spool segment size"))
        return false;

    uint64_t offset = 0;
    for (;;) {
        if (offset + sizeof(SpoolRecordHeader) > size) {
            if (offset != size)
                ++recovery_.tornRecords;
            break;
        }
        SpoolRecordHeader header;
        common::io::IoError io;
        if (!file.preadAt(offset, &header, sizeof(header),
                          "spool record header", &io)) {
            ++recovery_.tornRecords;
            break;
        }
        if (std::memcmp(header.magic, kSpoolMagic,
                        sizeof(kSpoolMagic)) != 0 ||
            header.version != kSpoolVersion ||
            header.payloadBytes > kMaxSpoolPayload ||
            offset + sizeof(header) + header.payloadBytes > size) {
            ++recovery_.tornRecords;
            break;
        }
        std::vector<uint8_t> payload(header.payloadBytes);
        if (header.payloadBytes > 0 &&
            !file.preadAt(offset + sizeof(header), payload.data(),
                          payload.size(), "spool record payload",
                          &io)) {
            ++recovery_.tornRecords;
            break;
        }
        if (recordCrc(header, payload.data(), payload.size()) !=
            header.crc) {
            ++recovery_.tornRecords;
            break;
        }

        SessionId id;
        std::memcpy(id.data(), header.sessionId, id.size());
        const std::string hex = sessionIdToHex(id);
        if (header.kind ==
            static_cast<uint32_t>(SpoolRecordKind::Result)) {
            IndexEntry entry;
            entry.segment = path;
            entry.offset = offset;
            entry.payloadBytes = header.payloadBytes;
            entry.status = header.status;
            entry.unixMillis = header.unixMillis;
            entry.order = nextOrder_++;
            index_[hex] = entry;
            ++recovery_.results;
        } else if (header.kind ==
                   static_cast<uint32_t>(SpoolRecordKind::Ack)) {
            const auto it = index_.find(hex);
            if (it != index_.end() && !it->second.acked) {
                it->second.acked = true;
                ++recovery_.acked;
            }
        } else {
            ++recovery_.tornRecords;
            break;
        }
        offset += sizeof(header) + header.payloadBytes;
    }
    return true;
}

bool
ResultSpool::rotateLocked(std::string *error)
{
    if (active_.isOpen()) {
        if (!active_.close()) {
            const std::string why = active_.error().describe();
            active_.reset();
            activePath_.clear();
            activeBytes_ = 0;
            return fail(error, why);
        }
    }
    activePath_ =
        (fs::path(options_.dir) / segmentName(nextSeq_++)).string();
    activeBytes_ = 0;
    if (!active_.open(activePath_,
                      common::io::CheckedFile::Mode::WriteTruncate)) {
        const std::string why = active_.error().describe();
        active_.reset();
        activePath_.clear();
        return fail(error, why);
    }
    return true;
}

bool
ResultSpool::appendRecordLocked(SpoolRecordKind kind,
                                const SessionId &id, uint32_t status,
                                const std::vector<uint8_t> &payload,
                                std::string *error)
{
    if (!open_)
        return fail(error, "spool is not open");
    if (payload.size() > kMaxSpoolPayload)
        return fail(error, "spool record payload too large");
    if ((!active_.isOpen() || activeBytes_ >= options_.segmentBytes) &&
        !rotateLocked(error))
        return false;

    SpoolRecordHeader header{};
    std::memcpy(header.magic, kSpoolMagic, sizeof(header.magic));
    header.version = kSpoolVersion;
    header.kind = static_cast<uint32_t>(kind);
    header.status = status;
    std::memcpy(header.sessionId, id.data(), id.size());
    header.unixMillis = nowUnixMillis();
    header.payloadBytes = static_cast<uint32_t>(payload.size());
    header.crc = recordCrc(header, payload.data(), payload.size());

    // fsync BEFORE reporting success: append() returning true is the
    // durability point the Report reply is ordered after.
    if (!active_.writeAll(&header, sizeof(header),
                          "spool record header") ||
        (!payload.empty() &&
         !active_.writeAll(payload.data(), payload.size(),
                           "spool record payload")) ||
        !active_.syncToDisk("spool record")) {
        const std::string why = active_.error().describe();
        // The active segment now has a torn tail; abandon it so the
        // next append starts a fresh segment (recovery skips the
        // tail, exactly like a crash).
        active_.reset();
        activePath_.clear();
        activeBytes_ = 0;
        return fail(error, why);
    }
    activeBytes_ += sizeof(header) + payload.size();
    return true;
}

bool
ResultSpool::append(const SessionId &id, uint32_t status,
                    const std::vector<uint8_t> &reportPayload,
                    std::string *error)
{
    if (ChaosInjector::stealSpoolAppend())
        return fail(error, "spool append failed: no space left on "
                           "device (injected)");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!appendRecordLocked(SpoolRecordKind::Result, id, status,
                            reportPayload, error))
        return false;

    IndexEntry entry;
    entry.segment = activePath_;
    entry.offset =
        activeBytes_ - sizeof(SpoolRecordHeader) - reportPayload.size();
    entry.payloadBytes = static_cast<uint32_t>(reportPayload.size());
    entry.status = status;
    entry.unixMillis = nowUnixMillis();
    entry.order = nextOrder_++;
    index_[sessionIdToHex(id)] = entry;
    enforceRetentionLocked();
    return true;
}

void
ResultSpool::enforceRetentionLocked()
{
    for (;;) {
        uint64_t live = 0;
        auto oldest = index_.end();
        for (auto it = index_.begin(); it != index_.end(); ++it) {
            if (it->second.acked)
                continue;
            ++live;
            if (oldest == index_.end() ||
                it->second.order < oldest->second.order)
                oldest = it;
        }
        if (live <= options_.maxResults || oldest == index_.end())
            return;
        index_.erase(oldest);
        ++expiredByRetention_;
    }
}

bool
ResultSpool::ack(const SessionId &id, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!open_)
        return fail(error, "spool is not open");
    const std::string hex = sessionIdToHex(id);
    const auto it = index_.find(hex);
    if (it == index_.end())
        return fail(error, "no spooled result for session " + hex);
    if (it->second.acked)
        return fail(error,
                    "session " + hex + " already acknowledged");
    if (!appendRecordLocked(SpoolRecordKind::Ack, id, 0, {}, error))
        return false;
    it->second.acked = true;
    return true;
}

bool
ResultSpool::has(const SessionId &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(sessionIdToHex(id)) != index_.end();
}

bool
ResultSpool::fetch(const SessionId &id, uint32_t &status,
                   std::vector<uint8_t> &reportPayload,
                   std::string *error) const
{
    std::string segment;
    uint64_t offset = 0;
    uint32_t payload_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(sessionIdToHex(id));
        if (it == index_.end())
            return fail(error, "no spooled result for session " +
                                   sessionIdToHex(id));
        segment = it->second.segment;
        offset = it->second.offset;
        payload_bytes = it->second.payloadBytes;
    }

    // Read back from disk and re-verify the CRC: a result damaged at
    // rest must be a typed error, never a silently wrong report.
    common::io::CheckedFile file;
    if (!file.open(segment, common::io::CheckedFile::Mode::Read))
        return fail(error, file.error().describe());
    SpoolRecordHeader header;
    common::io::IoError io;
    if (!file.preadAt(offset, &header, sizeof(header),
                      "spool record header", &io))
        return fail(error, io.describe());
    std::vector<uint8_t> payload(payload_bytes);
    if (payload_bytes > 0 &&
        !file.preadAt(offset + sizeof(header), payload.data(),
                      payload.size(), "spool record payload", &io))
        return fail(error, io.describe());
    if (header.payloadBytes != payload_bytes ||
        recordCrc(header, payload.data(), payload.size()) !=
            header.crc)
        return fail(error, "spool record for session " +
                               sessionIdToHex(id) +
                               " is damaged (CRC mismatch)");
    status = header.status;
    reportPayload = std::move(payload);
    return true;
}

std::vector<ResultSpool::Entry>
ResultSpool::list() const
{
    std::vector<std::pair<uint64_t, Entry>> ordered;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ordered.reserve(index_.size());
        for (const auto &[hex, ie] : index_) {
            Entry e;
            (void)sessionIdFromHex(hex, e.id);
            e.status = ie.status;
            e.unixMillis = ie.unixMillis;
            e.payloadBytes = ie.payloadBytes;
            e.acked = ie.acked;
            ordered.emplace_back(ie.order, e);
        }
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<Entry> out;
    out.reserve(ordered.size());
    for (auto &[order, e] : ordered)
        out.push_back(e);
    return out;
}

uint64_t
ResultSpool::resultCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

uint64_t
ResultSpool::expiredByRetention() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return expiredByRetention_;
}

uint64_t
ResultSpool::gc(std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!open_) {
        fail(error, "spool is not open");
        return 0;
    }

    // A segment is reclaimable when no un-acked result lives in it
    // and it is not the active append target.
    std::set<std::string> keep;
    if (active_.isOpen())
        keep.insert(activePath_);
    for (const auto &[hex, ie] : index_)
        if (!ie.acked)
            keep.insert(ie.segment);

    uint64_t removed = 0;
    std::error_code ec;
    std::vector<std::string> doomed;
    for (const auto &entry :
         fs::directory_iterator(options_.dir, ec)) {
        uint64_t seq;
        const std::string path = entry.path().string();
        if (entry.is_regular_file() &&
            parseSegmentName(entry.path().filename().string(), seq) &&
            keep.find(path) == keep.end())
            doomed.push_back(path);
    }
    for (const auto &path : doomed) {
        if (fs::remove(path, ec) && !ec)
            ++removed;
        // Drop index entries (all acked by construction) that lived
        // in the reclaimed segment.
        for (auto it = index_.begin(); it != index_.end();) {
            if (it->second.segment == path)
                it = index_.erase(it);
            else
                ++it;
        }
    }
    return removed;
}

void
ResultSpool::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_.isOpen())
        (void)active_.close();
    active_.reset();
    activePath_.clear();
    activeBytes_ = 0;
    open_ = false;
}

} // namespace emprof::serve
