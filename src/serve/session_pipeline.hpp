/**
 * @file
 * One served session's analysis pipeline: EMCAP bytes in, a finished
 * ProfileResult out, incrementally and with bounded memory.
 *
 * The pipeline chains three pieces that already guarantee streaming
 * bit-parity on their own:
 *
 *     EmcapStreamDecoder  →  analyzeChunkAuto  →  ChunkStitcher
 *     (bytes → samples)      (span → ChunkResult)  (carry + report)
 *
 * feed() appends decoded samples to a working buffer; whenever the
 * buffer holds strictly more than one analysis span past the current
 * position, the span is analysed and fed to the stitcher, and the
 * buffer is trimmed back to the halo the *next* span needs.  "Strictly
 * more" keeps at least one unanalysed sample until finish(), so the
 * closing span always runs with is_final = true and owns the trailing
 * partial quality block — the same ownership rule as the parallel
 * analyzer, which is what makes the served result bit-identical to
 * emprof_analyze on the same capture for EVERY way the upload is cut
 * into Data frames.
 *
 * Peak memory per session is therefore
 *     halo + spanSamples + (one decoded EMCAP chunk)
 * samples, independent of capture length — this is the number the
 * server multiplies by its session limit to size its memory budget.
 *
 * The pipeline is single-threaded by design: the server guarantees at
 * most one in-flight call per session (feeds are serialised through
 * the session's task queue), so no locking is needed here.
 */

#ifndef EMPROF_SERVE_SESSION_PIPELINE_HPP
#define EMPROF_SERVE_SESSION_PIPELINE_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "profiler/profiler.hpp"
#include "profiler/stitch.hpp"
#include "serve/emcap_stream.hpp"

namespace emprof::serve {

class SessionPipeline
{
  public:
    /**
     * @param base Analysis config; sampleRateHz is overridden by the
     *        capture header once it arrives, and clockHz too when the
     *        header records one (> 0) and @p honourCaptureClock —
     *        mirroring emprof_analyze's defaults.
     * @param spanSamples Analysis span length; 0 picks
     *        max(kDefaultChunkSamples, 8 norm windows).  Tests use
     *        tiny spans to force mid-upload analysis.
     */
    explicit SessionPipeline(const profiler::EmProfConfig &base,
                             std::size_t spanSamples = 0,
                             bool honourCaptureClock = true);

    /**
     * Ingest the next bytes of the capture upload.
     *
     * @retval false Malformed bytes or invalid capture metadata; the
     *         pipeline is poisoned and @p error says why.
     */
    bool feed(const uint8_t *data, std::size_t n, std::string *error);

    /**
     * End of upload: verify the capture arrived whole, analyse the
     * final span, and build the report.  Single-use.
     *
     * @retval false Truncated upload or poisoned pipeline.
     */
    bool finish(profiler::ProfileResult &out, std::string *error);

    /** Effective config; sample rate valid once headerReady(). */
    const profiler::EmProfConfig &config() const { return config_; }

    bool headerReady() const { return decoder_.headerReady(); }

    const EmcapStreamDecoder &decoder() const { return decoder_; }

    /**
     * Park support: drop the decoder's partially-received element and
     * return the element-aligned byte offset the upload must resume
     * from.  Decoded samples, stitcher carry and halo state are all
     * retained, so re-feeding the stream from this offset continues
     * the span chain bit-identically to an uninterrupted upload.
     */
    uint64_t
    rewindToResumable()
    {
        decoder_.rewindPartial();
        return decoder_.resumableOffset();
    }

    bool poisoned() const { return poisoned_; }

    bool resilient() const { return config_.signal.enabled; }

    /** Decoded-but-unanalysed samples currently buffered. */
    std::size_t bufferedSamples() const { return buffer_.size(); }

    /** Spans analysed before finish() (mid-upload progress). */
    uint64_t spansAnalyzed() const { return spansAnalyzed_; }

  private:
    bool poison(std::string *error, const std::string &message);
    bool onHeader(std::string *error);
    void analyzeSpan(uint64_t end, bool is_final);

    profiler::EmProfConfig config_;
    std::size_t spanSamples_;
    bool honourCaptureClock_;

    EmcapStreamDecoder decoder_;
    std::optional<profiler::ChunkStitcher> stitcher_;

    std::vector<dsp::Sample> buffer_; ///< [bufferBegin_, +size())
    uint64_t bufferBegin_ = 0;
    uint64_t nextBegin_ = 0; ///< first unanalysed global sample

    uint64_t spansAnalyzed_ = 0;
    bool finished_ = false;
    bool poisoned_ = false;
    std::string poisonReason_;
};

} // namespace emprof::serve

#endif // EMPROF_SERVE_SESSION_PIPELINE_HPP
