/**
 * @file
 * Socket-level chaos for the ingest service: the serve-layer sibling
 * of common/io/fault_injection.hpp.
 *
 * The file-layer FaultInjector proves every CheckedFile I/O site
 * survives disk faults; this harness does the same for the *socket*
 * boundary, where the failure modes nobody can hit on demand live:
 * fd exhaustion on accept, ENOSPC inside the result spool, clients
 * that stall mid-frame, trickle bytes below any useful rate, tear a
 * frame in half, or slam the connection shut with an RST.
 *
 * Two halves:
 *
 *  - ChaosInjector: a process-global, compile-in hook (same contract
 *    as FaultInjector — disarmed cost is one relaxed atomic load)
 *    consulted by Server::acceptPending and ResultSpool::append to
 *    simulate the failures that happen *inside* the server and cannot
 *    be provoked from a socket: EMFILE/ENFILE on accept and ENOSPC on
 *    spool append.  Counted plans: "fail the next N accepts", so a
 *    test can walk the server through exhaustion and recovery.
 *
 *  - Hostile-client helpers: runHostileSession drives one deliberately
 *    misbehaving session (slow-loris trickle, mid-upload stall, torn
 *    frame, RST on exit) and reports exactly how the server disposed
 *    of it — typed error (with any RetryAfter hint), connection
 *    killed, or neither.  tests/serve/test_overload.cpp and
 *    `throughput_serve --chaos` share it, so the bench's hostile
 *    population is the same code the regression tests pin down.
 *
 * Everything here is test/bench-only; production binaries never arm
 * the injector and never call the helpers.
 */

#ifndef EMPROF_SERVE_CHAOS_HPP
#define EMPROF_SERVE_CHAOS_HPP

#include <cstddef>
#include <cstdint>

#include "serve/client.hpp"
#include "serve/frame.hpp"

namespace emprof::serve {

/** One armed chaos plan; counts decrement as faults fire. */
struct ChaosPlan
{
    /** Fail this many subsequent accept() calls with acceptErrno
     *  before letting accepts through again (0 = none). */
    uint32_t failAccepts = 0;
    int acceptErrno = 0; ///< defaults to EMFILE when 0 and armed

    /** Fail this many subsequent ResultSpool::append calls with a
     *  typed ENOSPC-shaped error (0 = none). */
    uint32_t failSpoolAppends = 0;
};

/**
 * Process-global injector consulted by the server's accept loop and
 * the result spool.  Tests arm it (preferably via ScopedChaosPlan);
 * production code pays one relaxed atomic load while it is disarmed.
 */
class ChaosInjector
{
  public:
    static void arm(const ChaosPlan &plan);
    static void disarm();
    static bool armed();

    /**
     * Consulted before each real accept().  True = simulate a failed
     * accept; @p errnoOut (when non-null) receives the planned errno.
     * Decrements the plan's failAccepts budget.
     */
    static bool stealAccept(int *errnoOut);

    /** Consulted at the top of ResultSpool::append; true = fail the
     *  append as if the disk were full.  Decrements the budget. */
    static bool stealSpoolAppend();

    /** Accepts stolen since arm() (test observability). */
    static uint32_t acceptsStolen();

    /** Spool appends stolen since arm(). */
    static uint32_t spoolAppendsStolen();
};

/** RAII arm/disarm for tests. */
class ScopedChaosPlan
{
  public:
    explicit ScopedChaosPlan(const ChaosPlan &plan)
    {
        ChaosInjector::arm(plan);
    }
    ~ScopedChaosPlan() { ChaosInjector::disarm(); }

    ScopedChaosPlan(const ScopedChaosPlan &) = delete;
    ScopedChaosPlan &operator=(const ScopedChaosPlan &) = delete;
};

/** How one hostile session should misbehave. */
struct StallOptions
{
    /** Capture bytes sent normally right after Open (0 = none);
     *  makes the stall a *mid-upload* stall, leaving a parked-able
     *  prefix on the server. */
    uint64_t headBytes = 0;

    /** Bytes trickled per interval after the head.  0 = full stall
     *  (classic slow-loris: hold the slot, send nothing). */
    uint64_t trickleBytes = 0;
    uint32_t trickleIntervalMs = 100;

    /** Stop waiting for the server's reaction after this long; a
     *  test asserts the outcome arrived well before it. */
    uint32_t giveUpAfterMs = 10000;

    /** Send a frame header promising a payload, then only half of
     *  it — a torn frame the parser must keep waiting on. */
    bool tornFrame = false;

    /** Close with SO_LINGER 0 on exit so the peer sees an RST, not
     *  an orderly FIN — the herd-reconnect storm's signature. */
    bool resetOnExit = false;

    bool resilient = false; ///< open with kOpenResilient
};

/** How the server disposed of a hostile session. */
struct HostileOutcome
{
    /** A typed Error frame arrived; code / retryAfterMs are valid. */
    bool typedError = false;
    ErrorCode code = ErrorCode::Internal;
    uint32_t retryAfterMs = 0;
    std::string message;

    /** The transport died (EOF/RST) without a typed error. */
    bool connectionDied = false;

    bool opened = false; ///< the OpenAck arrived before misbehaving
    SessionId id{};      ///< server-echoed id (valid when opened)
    uint64_t bytesSent = 0; ///< capture bytes that left the client
};

/**
 * Run one hostile session against @p endpoint: connect, Open, send
 * options.headBytes of @p capture, then misbehave per @p options
 * while watching the socket for the server's reaction.  Returns as
 * soon as a typed Error arrives or the connection dies, or after
 * options.giveUpAfterMs with neither (typedError == connectionDied
 * == false — what a default-configured, defenseless server does).
 */
HostileOutcome runHostileSession(const Endpoint &endpoint,
                                 const uint8_t *capture,
                                 std::size_t bytes,
                                 const StallOptions &options);

} // namespace emprof::serve

#endif // EMPROF_SERVE_CHAOS_HPP
