/**
 * @file
 * Incremental EMCAP decoding for the ingest service.
 *
 * CaptureReader needs the whole file on disk (it opens the footer
 * index first); a served upload arrives as a byte stream with no
 * ability to seek.  EmcapStreamDecoder consumes that stream in
 * whatever slices the network delivers and emits decoded samples as
 * soon as each chunk's bytes are complete:
 *
 *     FileHeader → [ChunkHeader + payload]* → footer (skipped)
 *
 * Every integrity check of the on-disk reader is applied on the fly —
 * header magic/version/CRC, per-chunk CRC32C over header + payload,
 * codec plausibility — so a corrupted or hostile upload yields a typed
 * error at the first bad byte, never undefined behaviour, and never
 * more than one chunk of buffered payload (bounded memory per
 * session).
 *
 * The header's totalSamples field tells the decoder where the chunk
 * region ends (the writer back-patches it on finalize, so any capture
 * a client can legitimately push has it).  Once that many samples are
 * decoded, the remaining bytes are the footer index + tail: they are
 * counted and their last four bytes tracked, and completeness is
 * checked at end-of-upload — the footer must be exactly
 * 24 bytes/chunk + 24 and end in the EMCF magic.  An upload cut short
 * anywhere (mid-chunk, mid-footer, before the footer) therefore fails
 * complete() with a reason, matching emprof_analyze's refusal to
 * analyse a truncated capture without --recover.
 */

#ifndef EMPROF_SERVE_EMCAP_STREAM_HPP
#define EMPROF_SERVE_EMCAP_STREAM_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dsp/types.hpp"
#include "store/capture_reader.hpp"
#include "store/emcap_format.hpp"

namespace emprof::serve {

class EmcapStreamDecoder
{
  public:
    /**
     * Consume @p n bytes of the capture stream; newly decoded samples
     * are appended to @p out (possibly none, possibly several chunks'
     * worth).
     *
     * @retval false Malformed stream (@p error says why).  The decoder
     *         is then poisoned: every further feed() fails the same
     *         way.
     */
    bool feed(const uint8_t *data, std::size_t n,
              std::vector<dsp::Sample> &out,
              std::string *error = nullptr);

    /** True once the 72-byte file header has been validated. */
    bool headerReady() const { return headerReady_; }

    /** Capture metadata; valid once headerReady(). */
    const store::CaptureInfo &info() const { return info_; }

    uint64_t samplesDecoded() const { return samplesDecoded_; }
    uint64_t chunksDecoded() const { return chunksDecoded_; }
    uint64_t bytesConsumed() const { return bytesConsumed_; }

    /**
     * The highest element-aligned byte offset that is durably part of
     * the decode: everything before the element (file header, chunk,
     * or footer byte) currently in flight.  This is the offset the
     * resume handshake echoes — a reconnecting client re-sends from
     * here and the decode continues as if never interrupted.
     */
    uint64_t resumableOffset() const
    {
        return bytesConsumed_ - pending_.size();
    }

    /**
     * Drop the partially-received element so the stream can be re-fed
     * from resumableOffset().  The state machine stays where it is:
     * the element is simply accumulated again from its first byte
     * (for a chunk-payload element that includes its already-parsed
     * header, whose re-sent bytes are covered by the chunk CRC — a
     * client that resumes with different bytes is caught, not
     * silently accepted).  No-op when nothing is in flight.
     */
    void rewindPartial()
    {
        bytesConsumed_ -= pending_.size();
        pending_.clear();
    }

    /**
     * End-of-upload check: all declared samples decoded and a
     * complete, EMCF-terminated footer seen.
     *
     * @retval false The upload was truncated or never got past the
     *         header; @p error names the missing piece.
     */
    bool complete(std::string *error = nullptr) const;

  private:
    enum class State
    {
        FileHeader,
        ChunkHeader,
        ChunkPayload,
        Footer,
        Poisoned,
    };

    bool poison(std::string *error, const std::string &message);
    bool onFileHeader(std::string *error);
    bool onChunk(std::vector<dsp::Sample> &out, std::string *error);

    State state_ = State::FileHeader;
    std::string poisonReason_;
    std::vector<uint8_t> pending_; ///< bytes of the current element
    std::size_t need_ = sizeof(store::FileHeader);

    store::CaptureInfo info_;
    bool headerReady_ = false;
    store::ChunkHeader chunkHeader_{};

    uint64_t samplesDecoded_ = 0;
    uint64_t chunksDecoded_ = 0;
    uint64_t bytesConsumed_ = 0;
    uint64_t footerBytes_ = 0;
    uint8_t tail4_[4] = {0, 0, 0, 0}; ///< last four bytes seen
};

} // namespace emprof::serve

#endif // EMPROF_SERVE_EMCAP_STREAM_HPP
