#include "serve/chaos.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace emprof::serve {

namespace {

struct ChaosState
{
    std::mutex mutex;
    ChaosPlan plan;
    uint32_t acceptsStolen = 0;
    uint32_t spoolAppendsStolen = 0;
};

ChaosState &
state()
{
    static ChaosState s;
    return s;
}

/** Disarmed fast path: one relaxed load, no lock. */
std::atomic<bool> g_armed{false};

} // namespace

void
ChaosInjector::arm(const ChaosPlan &plan)
{
    ChaosState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.plan = plan;
    if (s.plan.failAccepts > 0 && s.plan.acceptErrno == 0)
        s.plan.acceptErrno = EMFILE;
    s.acceptsStolen = 0;
    s.spoolAppendsStolen = 0;
    g_armed.store(true, std::memory_order_release);
}

void
ChaosInjector::disarm()
{
    ChaosState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    g_armed.store(false, std::memory_order_release);
    s.plan = ChaosPlan{};
}

bool
ChaosInjector::armed()
{
    return g_armed.load(std::memory_order_acquire);
}

bool
ChaosInjector::stealAccept(int *errnoOut)
{
    if (!g_armed.load(std::memory_order_relaxed))
        return false;
    ChaosState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.plan.failAccepts == 0)
        return false;
    --s.plan.failAccepts;
    ++s.acceptsStolen;
    if (errnoOut != nullptr)
        *errnoOut = s.plan.acceptErrno;
    return true;
}

bool
ChaosInjector::stealSpoolAppend()
{
    if (!g_armed.load(std::memory_order_relaxed))
        return false;
    ChaosState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.plan.failSpoolAppends == 0)
        return false;
    --s.plan.failSpoolAppends;
    ++s.spoolAppendsStolen;
    return true;
}

uint32_t
ChaosInjector::acceptsStolen()
{
    ChaosState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.acceptsStolen;
}

uint32_t
ChaosInjector::spoolAppendsStolen()
{
    ChaosState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.spoolAppendsStolen;
}

namespace {

using Clock = std::chrono::steady_clock;

/** Raw best-effort send; false when the transport died. */
bool
rawSend(int fd, const uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Watch @p fd for up to @p waitMs for the server's reaction, folding
 * whatever arrives into @p out.  Returns true when the session is
 * decided (typed error or dead transport) — stop misbehaving.
 */
bool
pollServerReaction(int fd, int waitMs, std::vector<uint8_t> &rxBuffer,
                   HostileOutcome &out)
{
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, waitMs);
    if (rc < 0)
        return false;
    if (rc == 0)
        return false;
    uint8_t chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
        out.connectionDied = true;
        return true;
    }
    rxBuffer.insert(rxBuffer.end(), chunk, chunk + n);
    Frame frame;
    const long consumed =
        parseFrame(rxBuffer.data(), rxBuffer.size(), frame, nullptr);
    if (consumed < 0) {
        // Unparseable server bytes: treat as a dead session.
        out.connectionDied = true;
        return true;
    }
    if (consumed == 0)
        return false; // partial frame; keep watching
    if (frame.type == FrameType::Error) {
        out.typedError = true;
        decodeErrorPayload(frame.payload, out.code, out.message,
                           &out.retryAfterMs);
        return true;
    }
    // Any other frame (a Report for a session we never finished
    // would be a server bug); drop it and keep watching.
    rxBuffer.erase(rxBuffer.begin(), rxBuffer.begin() + consumed);
    return false;
}

void
closeHostile(int fd, bool reset)
{
    if (fd < 0)
        return;
    if (reset) {
        // RST instead of FIN: what a yanked cable or a crashed NAT
        // box looks like from the server's side.
        linger lg{};
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    ::close(fd);
}

} // namespace

HostileOutcome
runHostileSession(const Endpoint &endpoint, const uint8_t *capture,
                  std::size_t bytes, const StallOptions &options)
{
    HostileOutcome out;
    Client client;
    std::string error;
    if (!client.connect(endpoint, &error)) {
        out.connectionDied = true;
        out.message = error;
        return out;
    }
    const int fd = client.releaseFd();

    // Open by hand so a typed rejection (RetryAfter at a watermark)
    // is captured with its hint rather than flattened by the client.
    OpenRequest req{};
    req.flags = options.resilient ? kOpenResilient : 0;
    if (!writeFrame(fd, FrameType::Open, &req, sizeof(req))) {
        out.connectionDied = true;
        closeHostile(fd, options.resetOnExit);
        return out;
    }
    Frame reply;
    if (!readFrame(fd, reply)) {
        out.connectionDied = true;
        closeHostile(fd, options.resetOnExit);
        return out;
    }
    if (reply.type == FrameType::Error) {
        out.typedError = true;
        decodeErrorPayload(reply.payload, out.code, out.message,
                           &out.retryAfterMs);
        closeHostile(fd, options.resetOnExit);
        return out;
    }
    if (reply.type != FrameType::OpenAck) {
        out.connectionDied = true;
        closeHostile(fd, options.resetOnExit);
        return out;
    }
    uint64_t resume_offset = 0;
    SessionState ack_state = SessionState::Fresh;
    if (!decodeOpenAckPayload(reply.payload, out.id, resume_offset,
                              ack_state)) {
        out.connectionDied = true;
        closeHostile(fd, options.resetOnExit);
        return out;
    }
    out.opened = true;

    // The well-behaved prefix: headBytes of real capture data.
    const uint64_t head = std::min<uint64_t>(options.headBytes, bytes);
    if (head > 0) {
        if (!writeFrame(fd, FrameType::Data, capture, head)) {
            out.connectionDied = true;
            closeHostile(fd, options.resetOnExit);
            return out;
        }
        out.bytesSent = head;
    }

    // The torn frame: a header promising a payload, then half of it.
    if (options.tornFrame) {
        const std::size_t promise =
            std::min<std::size_t>(bytes > head ? bytes - head : 64,
                                  64 * 1024);
        std::vector<uint8_t> framed;
        std::vector<uint8_t> torn_payload(promise, 0xA5);
        if (bytes > head)
            std::memcpy(torn_payload.data(), capture + head,
                        std::min<std::size_t>(promise, bytes - head));
        appendFrame(framed, FrameType::Data, torn_payload.data(),
                    torn_payload.size());
        const std::size_t send_bytes =
            sizeof(FrameHeader) + promise / 2;
        if (!rawSend(fd, framed.data(), send_bytes)) {
            out.connectionDied = true;
            closeHostile(fd, options.resetOnExit);
            return out;
        }
    }

    // Misbehave until the server reacts or we give up.
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options.giveUpAfterMs);
    std::vector<uint8_t> rx;
    std::size_t trickle_off = static_cast<std::size_t>(head);
    while (Clock::now() < deadline) {
        const int wait_ms = static_cast<int>(std::min<int64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count(),
            options.trickleBytes > 0 ? options.trickleIntervalMs : 200));
        if (pollServerReaction(fd, std::max(wait_ms, 0), rx, out))
            break;
        if (options.trickleBytes > 0 && trickle_off < bytes) {
            // Slow-loris: a sip of real bytes, far below any rate
            // floor, each in its own tiny Data frame.
            const std::size_t take = std::min<std::size_t>(
                options.trickleBytes, bytes - trickle_off);
            if (!writeFrame(fd, FrameType::Data, capture + trickle_off,
                            take)) {
                // The sip raced the server's verdict: the typed
                // error (and EOF) may already sit in our receive
                // buffer — a unix-socket close discards nothing.
                // Drain it before declaring the transport dead.
                while (Clock::now() < deadline &&
                       !pollServerReaction(fd, 50, rx, out))
                    ;
                if (!out.typedError)
                    out.connectionDied = true;
                break;
            }
            trickle_off += take;
            out.bytesSent = trickle_off;
        }
    }
    closeHostile(fd, options.resetOnExit);
    return out;
}

} // namespace emprof::serve
