/**
 * @file
 * EMFR wire framing for the EMPROF ingest service.
 *
 * A served session is one capture upload over a byte stream (unix or
 * TCP socket), cut into length-prefixed frames:
 *
 *     | FrameHeader | payload (payloadBytes) | FrameHeader | ... |
 *
 * The 16-byte header carries magic, protocol version, frame type, the
 * payload length, and a CRC32C over the payload — the same checksum
 * the EMCAP store uses (store/crc32c), so a flipped bit anywhere on
 * the wire is pinned to one frame and rejected with a typed error
 * instead of poisoning the decode.  All multi-byte fields are
 * little-endian, like the EMCAP format itself.
 *
 * Session protocol (client side), v2:
 *
 *     Open          options, session id (zero = assign one), resume
 *                   offset (kResumeQuery = "tell me yours")
 *   ← OpenAck       echoed session id + the server's durable offset:
 *                   Fresh (start at 0), Resumed (re-send from the
 *                   echoed chunk-aligned offset), or Complete (the
 *                   result is already spooled; a Report follows
 *                   immediately)
 *     Data*         consecutive bytes of one EMCAP capture file,
 *                   starting at the acknowledged offset
 *     Finish        end of upload, request the report
 *   ← Report        status + events (bit patterns) + text report
 *   ← Error         typed rejection at any point; session is over
 *
 * The handshake is what makes uploads resumable: a client that loses
 * its connection mid-upload reconnects, repeats Open with the same
 * session id and kOpenResume, and the server — which parked the
 * session's analysis state when the socket died — answers with the
 * highest chunk-aligned byte offset it durably received.  The client
 * re-sends from there and the resumed span chain is bit-identical to
 * an uninterrupted upload (see session_pipeline.hpp).
 *
 * Scrape protocol: a connection may instead send one StatsRequest and
 * receives a Stats frame (text metrics rendering), then is closed.
 *
 * The payload cap bounds per-session framing memory: a header
 * announcing more than kMaxFramePayload is malformed by definition
 * (the server never buffers it), and well-behaved clients slice
 * uploads into frames well under the cap.
 */

#ifndef EMPROF_SERVE_FRAME_HPP
#define EMPROF_SERVE_FRAME_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "profiler/events.hpp"

namespace emprof::serve {

/** First four bytes of every frame. */
constexpr char kFrameMagic[4] = {'E', 'M', 'F', 'R'};

/** Wire protocol version; bumped on any layout change.  v2 added the
 *  Open/OpenAck resume handshake (session ids + durable offsets); v3
 *  widened WireEvent with the service-level attribution fields; v4
 *  added the overload vocabulary — ErrorCode::IdleTimeout,
 *  ErrorCode::RetryAfter (whose Error payload carries a server-
 *  suggested backoff hint) and the HealthRequest/Health one-byte
 *  load-balancer probe. */
constexpr uint16_t kProtocolVersion = 4;

/** Hard cap on one frame's payload (bounds per-session memory). */
constexpr std::size_t kMaxFramePayload = std::size_t{4} << 20;

enum class FrameType : uint16_t
{
    Open = 1,         ///< client → server: session options
    Data = 2,         ///< client → server: next EMCAP bytes
    Finish = 3,       ///< client → server: upload complete
    Report = 4,       ///< server → client: session result
    Error = 5,        ///< server → client: typed rejection
    StatsRequest = 6,  ///< client → server: scrape the metrics
    Stats = 7,         ///< server → client: text metrics rendering
    OpenAck = 8,       ///< server → client: session id + resume offset
    HealthRequest = 9, ///< client → server: one-byte liveness probe
    Health = 10,       ///< server → client: HealthState byte
};

/** 16-byte frame header; the struct layout is the wire format. */
struct FrameHeader
{
    char magic[4];
    uint16_t version;
    uint16_t type;
    uint32_t payloadBytes;
    uint32_t payloadCrc; ///< CRC32C over the payload bytes
};
static_assert(sizeof(FrameHeader) == 16, "header layout is the format");

/** A served session's identity: 16 opaque bytes, server-assigned
 *  unless the client brings its own nonzero id (resume). */
using SessionId = std::array<uint8_t, 16>;

bool sessionIdIsZero(const SessionId &id);
std::string sessionIdToHex(const SessionId &id);

/** Parse 32 lowercase/uppercase hex digits; false on anything else. */
bool sessionIdFromHex(const std::string &hex, SessionId &out);

/** resumeFrom sentinel: "whatever offset you durably have". */
constexpr uint64_t kResumeQuery = ~uint64_t{0};

/** Open payload. */
struct OpenRequest
{
    /** kOpenResilient enables the signal-quality resilience layer;
     *  kOpenResume asks to re-attach to sessionId. */
    uint32_t flags;
    uint32_t reserved;     ///< zero
    uint8_t sessionId[16]; ///< all-zero = server assigns one
    /** Byte offset the client intends to resume from; kResumeQuery
     *  defers to the server's durable offset.  Ignored without
     *  kOpenResume. */
    uint64_t resumeFrom;
};
static_assert(sizeof(OpenRequest) == 32, "layout is the format");

constexpr uint32_t kOpenResilient = 1u << 0;
constexpr uint32_t kOpenResume = 1u << 1;

/** OpenAck payload: the server's side of the resume handshake. */
struct OpenAckPayload
{
    uint8_t sessionId[16]; ///< authoritative session id
    /** Chunk-aligned byte offset the upload must (re)start at. */
    uint64_t resumeOffset;
    uint32_t state; ///< SessionState
    uint32_t reserved;
};
static_assert(sizeof(OpenAckPayload) == 32, "layout is the format");

/** OpenAck state: what the client should do next. */
enum class SessionState : uint32_t
{
    Fresh = 0,    ///< new session; upload from byte 0
    Resumed = 1,  ///< re-attached; upload from resumeOffset
    Complete = 2, ///< result already spooled; a Report frame follows
};

/** Why the server rejected a session (Error payload leads with it). */
enum class ErrorCode : uint32_t
{
    Malformed = 1,   ///< bad frame, bad EMCAP bytes, truncated upload
    Busy = 2,        ///< session limit reached
    Internal = 3,    ///< analysis failure on the server side
    Shutdown = 4,    ///< server is stopping
    BadResume = 5,   ///< resume offset/id the server cannot honour
    IdleTimeout = 6, ///< no upload progress (idle / deadline / rate
                     ///< floor); the session is parked, resume works
    RetryAfter = 7,  ///< load shed; payload carries a backoff hint
};

/**
 * Health probe answer (v4): one byte so a load balancer can classify
 * the collector without opening a session or parsing metrics text.
 */
enum class HealthState : uint8_t
{
    Live = 0,     ///< admitting sessions normally
    Backoff = 1,  ///< soft watermark: new Opens answered RetryAfter
    Shedding = 2, ///< hard watermark: established sessions being shed
    Draining = 3, ///< shutting down; sessions answered Shutdown
};

/** Error payload: 4-byte code then a human-readable message. */
struct ErrorHeader
{
    uint32_t code; ///< ErrorCode
};
static_assert(sizeof(ErrorHeader) == 4, "layout is the format");

/**
 * Report payload: header, then eventCount WireEvents, then the text
 * report (the remainder of the payload, not NUL-terminated).
 *
 * status carries emprof_analyze exit semantics: 0 = ok, 3 = degraded
 * (signal coverage below 100%).
 */
struct ReportHeader
{
    uint32_t status;
    uint32_t eventCount;
    uint64_t totalSamples;
    double coverageFraction; ///< 1.0 unless the resilient layer ran
};
static_assert(sizeof(ReportHeader) == 24, "layout is the format");

/**
 * One stall event on the wire.  Doubles travel as their IEEE-754 bit
 * patterns, so the served path's bit-identity guarantee survives
 * serialization by construction.
 */
struct WireEvent
{
    uint64_t startSample;
    uint64_t endSample;
    uint64_t depthBits;
    uint64_t durationNsBits;
    uint64_t stallCyclesBits;
    uint64_t confidenceBits;
    uint32_t kind;
    uint32_t level; ///< profiler::ServiceLevel (v3)
    uint64_t levelConfidenceBits;
};
static_assert(sizeof(WireEvent) == 64, "layout is the format");

WireEvent toWire(const profiler::StallEvent &ev);
profiler::StallEvent fromWire(const WireEvent &w);

/** A parsed frame (header validated, payload CRC checked). */
struct Frame
{
    FrameType type = FrameType::Error;
    std::vector<uint8_t> payload;
};

/** Render a frame into @p out (appended): header + payload. */
void appendFrame(std::vector<uint8_t> &out, FrameType type,
                 const void *payload, std::size_t payloadBytes);

/**
 * Try to parse one frame from the front of @p buffer.
 *
 * @return The number of bytes consumed (header + payload) with
 *         @p frame filled in; 0 when the buffer does not yet hold a
 *         complete frame (read more); negative when the stream is
 *         malformed — bad magic, unsupported version, oversized
 *         payload, or CRC mismatch — with @p error describing which.
 *         A malformed stream cannot be resynchronised; close it.
 */
long parseFrame(const uint8_t *buffer, std::size_t size, Frame &frame,
                std::string *error = nullptr);

/**
 * Blocking frame I/O over a socket fd (client side and the server's
 * small replies).  Writes loop over partial sends with EINTR retry and
 * suppress SIGPIPE; a peer hangup surfaces as false + error.
 *
 * @p connectionLost, when non-null, is set true iff the failure is the
 * transport dying under the session (EPIPE, ECONNRESET, EOF mid-frame)
 * rather than a protocol violation — the class of failure a resumable
 * client retries.
 */
bool writeFrame(int fd, FrameType type, const void *payload,
                std::size_t payloadBytes, std::string *error = nullptr,
                bool *connectionLost = nullptr);

/**
 * Read exactly one frame (blocking).  @p maxPayload lets callers
 * tighten the default cap.
 */
bool readFrame(int fd, Frame &frame, std::string *error = nullptr,
               std::size_t maxPayload = kMaxFramePayload,
               bool *connectionLost = nullptr);

/** Serialize a Report frame payload. */
std::vector<uint8_t>
encodeReportPayload(uint32_t status, uint64_t totalSamples,
                    double coverageFraction,
                    const std::vector<profiler::StallEvent> &events,
                    const std::string &reportText);

/** Parsed Report payload. */
struct DecodedReport
{
    uint32_t status = 0;
    uint64_t totalSamples = 0;
    double coverageFraction = 1.0;
    std::vector<profiler::StallEvent> events;
    std::string reportText;
};

/** Decode a Report payload; false + reason on a malformed payload. */
bool decodeReportPayload(const std::vector<uint8_t> &payload,
                         DecodedReport &out,
                         std::string *error = nullptr);

/** Serialize an OpenAck frame payload. */
std::vector<uint8_t> encodeOpenAckPayload(const SessionId &id,
                                          uint64_t resumeOffset,
                                          SessionState state);

/** Decode an OpenAck payload; false + reason when malformed. */
bool decodeOpenAckPayload(const std::vector<uint8_t> &payload,
                          SessionId &id, uint64_t &resumeOffset,
                          SessionState &state,
                          std::string *error = nullptr);

/** Serialize an Error frame payload (code + message). */
std::vector<uint8_t> encodeErrorPayload(ErrorCode code,
                                        const std::string &message);

/**
 * Serialize a RetryAfter Error payload: the 4-byte ErrorHeader, a
 * 4-byte little-endian backoff hint (milliseconds), then the message.
 * Decoded by decodeErrorPayload, which strips the hint bytes from the
 * returned message.
 */
std::vector<uint8_t> encodeRetryAfterPayload(uint32_t retryAfterMs,
                                             const std::string &message);

/**
 * Decode an Error payload (tolerates a bare message).  For a
 * RetryAfter payload @p retryAfterMs, when non-null, receives the
 * server's suggested backoff in milliseconds (0 when absent).
 */
bool decodeErrorPayload(const std::vector<uint8_t> &payload,
                        ErrorCode &code, std::string &message,
                        uint32_t *retryAfterMs = nullptr);

} // namespace emprof::serve

#endif // EMPROF_SERVE_FRAME_HPP
