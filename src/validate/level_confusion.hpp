/**
 * @file
 * Service-level confusion harness (DESIGN.md §16): scores the
 * profiler's duration-band classifier against the simulator's
 * per-interval ground-truth labels.
 *
 * This is the only component allowed to see both sides — emprof_sim
 * deliberately never links the profiler and vice versa — so the
 * mapping between sim::StallLevel and profiler::ServiceLevel, the
 * cycle→sample coordinate change, the event↔interval matching and the
 * confusion-matrix bookkeeping all live here.
 */

#ifndef EMPROF_VALIDATE_LEVEL_CONFUSION_HPP
#define EMPROF_VALIDATE_LEVEL_CONFUSION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/events.hpp"
#include "profiler/profiler.hpp"
#include "sim/config.hpp"
#include "sim/ground_truth.hpp"

namespace emprof::validate {

/** Map the simulator's label taxonomy onto the profiler's. */
profiler::ServiceLevel toProfilerLevel(sim::StallLevel level);

/** One ground-truth stall interval in signal sample coordinates. */
struct LabeledInterval
{
    /** First sample covered by the stall. */
    uint64_t beginSample = 0;

    /** Last sample covered by the stall (inclusive). */
    uint64_t endSample = 0;

    /** Ground-truth service level. */
    profiler::ServiceLevel truth = profiler::ServiceLevel::Dram;

    /** Stall length in simulator cycles (diagnostic). */
    uint64_t cycles = 0;
};

/**
 * Project the simulator's labeled stall intervals (miss-induced and
 * LLC-hit waits, coalesced at the detector's resolution) into signal
 * sample coordinates.
 *
 * @param gt Finalized ground truth of a completed run.
 * @param clock_hz Simulated core clock.
 * @param sample_rate_hz Signal sample rate (== clock_hz for the raw
 *        power trace; the receiver bandwidth for EM captures).
 * @param merge_gap_cycles Coalesce intervals separated by at most this
 *        many cycles — a signal-domain detector cannot resolve closer
 *        neighbours (same rationale as countCoalescedIntervals).
 * @param min_cycles Drop merged intervals shorter than this — stalls
 *        below the detector's duration threshold are invisible by
 *        design, so the comparison floors both sides identically.
 */
std::vector<LabeledInterval>
groundTruthLabels(const sim::GroundTruth &gt, double clock_hz,
                  double sample_rate_hz, sim::Cycle merge_gap_cycles,
                  sim::Cycle min_cycles);

/**
 * 4x4 service-level confusion matrix plus the two failure modes a
 * square matrix cannot express: ground-truth intervals no event
 * overlapped (missed) and events no interval overlapped (spurious).
 */
struct ConfusionMatrix
{
    /** cells[truth][predicted], matched pairs only. */
    uint64_t cells[profiler::kServiceLevelCount]
                  [profiler::kServiceLevelCount] = {};

    /** Ground-truth intervals with no overlapping event, by truth. */
    uint64_t missed[profiler::kServiceLevelCount] = {};

    /** Events with no overlapping interval, by predicted level. */
    uint64_t spurious[profiler::kServiceLevelCount] = {};

    /** Ground-truth intervals at @p level (matched + missed). */
    uint64_t truthTotal(profiler::ServiceLevel level) const;

    /** All ground-truth intervals. */
    uint64_t truthTotal() const;

    /**
     * Fraction of @p level 's ground-truth intervals the classifier
     * attributed correctly (missed intervals count against it).
     * Returns 1.0 when the level has no ground truth at all, so
     * accuracy gates are vacuously satisfied for absent levels.
     */
    double accuracy(profiler::ServiceLevel level) const;

    /** Diagonal mass over all ground-truth intervals (1.0 if none). */
    double overallAccuracy() const;

    /** Accumulate another matrix (suite-level aggregation). */
    void add(const ConfusionMatrix &other);

    /** Human-readable table for logs and test output. */
    std::string toText() const;

    /** JSON artifact body ({"label": ..., "cells": ..., ...}). */
    std::string toJson(const std::string &label) const;
};

/**
 * Score classified events against labeled ground-truth intervals by
 * overlap: each event is assigned to the interval it overlaps most;
 * each interval takes the prediction of its best-overlapping event.
 * Both lists must be sorted by start (the profiler and the ground
 * truth both emit in time order).
 */
ConfusionMatrix
scoreEvents(const std::vector<profiler::StallEvent> &events,
            const std::vector<LabeledInterval> &truth);

/**
 * Derive a profiler configuration whose attribution boundaries match
 * the simulator's timing model, for validation runs on the raw power
 * trace (one sample per cycle):
 *  - llcHitMaxNs: the simulator's own hit/memory cut — waits up to
 *    twice the LLC hit latency are hit-class (an in-flight fill closer
 *    than that never raises memoryStall), one cycle beyond is
 *    memory-class — placed on the half-cycle between the two;
 *  - prefetchMaskedMaxNs: the sim's own demand-class threshold, or 0
 *    (band disabled) when the device has no prefetcher;
 *  - refreshStallNs: access latency plus the sim's refresh-lengthened
 *    threshold — the shortest stall the ground truth labels
 *    DramRefresh;
 *  - minStallNs: low enough to see LLC-hit waits, still above
 *    scheduling noise (divider latency and branch redirects).
 */
profiler::EmProfConfig
levelValidationConfig(const sim::SimConfig &sim_config,
                      double sample_rate_hz);

/**
 * Detector duration floor in simulator cycles for @p config — the
 * min_cycles both sides of the comparison are floored at.
 */
sim::Cycle detectorFloorCycles(const profiler::EmProfConfig &config);

} // namespace emprof::validate

#endif // EMPROF_VALIDATE_LEVEL_CONFUSION_HPP
