#include "validate/level_confusion.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace emprof::validate {

profiler::ServiceLevel
toProfilerLevel(sim::StallLevel level)
{
    switch (level) {
    case sim::StallLevel::LlcHit:
        return profiler::ServiceLevel::LlcHit;
    case sim::StallLevel::PrefetchMasked:
        return profiler::ServiceLevel::PrefetchMasked;
    case sim::StallLevel::Dram:
        return profiler::ServiceLevel::Dram;
    case sim::StallLevel::DramRefresh:
        return profiler::ServiceLevel::DramRefresh;
    }
    return profiler::ServiceLevel::Dram;
}

std::vector<LabeledInterval>
groundTruthLabels(const sim::GroundTruth &gt, double clock_hz,
                  double sample_rate_hz, sim::Cycle merge_gap_cycles,
                  sim::Cycle min_cycles)
{
    const double per_cycle = sample_rate_hz / clock_hz;
    std::vector<LabeledInterval> out;
    for (const auto &interval :
         gt.labeledIntervals(merge_gap_cycles, min_cycles)) {
        LabeledInterval li;
        li.beginSample = static_cast<uint64_t>(
            static_cast<double>(interval.begin) * per_cycle);
        li.endSample = static_cast<uint64_t>(
            static_cast<double>(interval.end) * per_cycle);
        li.truth = toProfilerLevel(interval.level());
        li.cycles = interval.durationCycles();
        out.push_back(li);
    }
    return out;
}

uint64_t
ConfusionMatrix::truthTotal(profiler::ServiceLevel level) const
{
    const auto row = static_cast<std::size_t>(level);
    uint64_t total = missed[row];
    for (std::size_t col = 0; col < profiler::kServiceLevelCount; ++col)
        total += cells[row][col];
    return total;
}

uint64_t
ConfusionMatrix::truthTotal() const
{
    uint64_t total = 0;
    for (std::size_t row = 0; row < profiler::kServiceLevelCount; ++row)
        total += truthTotal(static_cast<profiler::ServiceLevel>(row));
    return total;
}

double
ConfusionMatrix::accuracy(profiler::ServiceLevel level) const
{
    const uint64_t total = truthTotal(level);
    if (total == 0)
        return 1.0;
    const auto row = static_cast<std::size_t>(level);
    return static_cast<double>(cells[row][row]) /
           static_cast<double>(total);
}

double
ConfusionMatrix::overallAccuracy() const
{
    const uint64_t total = truthTotal();
    if (total == 0)
        return 1.0;
    uint64_t diagonal = 0;
    for (std::size_t l = 0; l < profiler::kServiceLevelCount; ++l)
        diagonal += cells[l][l];
    return static_cast<double>(diagonal) / static_cast<double>(total);
}

void
ConfusionMatrix::add(const ConfusionMatrix &other)
{
    for (std::size_t row = 0; row < profiler::kServiceLevelCount;
         ++row) {
        missed[row] += other.missed[row];
        spurious[row] += other.spurious[row];
        for (std::size_t col = 0; col < profiler::kServiceLevelCount;
             ++col)
            cells[row][col] += other.cells[row][col];
    }
}

std::string
ConfusionMatrix::toText() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-16s", "truth\\predicted");
    out += line;
    for (std::size_t col = 0; col < profiler::kServiceLevelCount;
         ++col) {
        std::snprintf(line, sizeof(line), " %15s",
                      profiler::serviceLevelName(
                          static_cast<profiler::ServiceLevel>(col)));
        out += line;
    }
    out += "          missed        accuracy\n";
    for (std::size_t row = 0; row < profiler::kServiceLevelCount;
         ++row) {
        const auto level = static_cast<profiler::ServiceLevel>(row);
        std::snprintf(line, sizeof(line), "  %-16s",
                      profiler::serviceLevelName(level));
        out += line;
        for (std::size_t col = 0; col < profiler::kServiceLevelCount;
             ++col) {
            std::snprintf(line, sizeof(line), " %15llu",
                          static_cast<unsigned long long>(
                              cells[row][col]));
            out += line;
        }
        std::snprintf(line, sizeof(line), " %15llu %14.1f%%\n",
                      static_cast<unsigned long long>(missed[row]),
                      100.0 * accuracy(level));
        out += line;
    }
    std::snprintf(line, sizeof(line), "  %-16s", "spurious");
    out += line;
    for (std::size_t col = 0; col < profiler::kServiceLevelCount;
         ++col) {
        std::snprintf(line, sizeof(line), " %15llu",
                      static_cast<unsigned long long>(spurious[col]));
        out += line;
    }
    std::snprintf(line, sizeof(line), "\n  overall accuracy %.1f%%\n",
                  100.0 * overallAccuracy());
    out += line;
    return out;
}

std::string
ConfusionMatrix::toJson(const std::string &label) const
{
    std::string out = "{\n  \"label\": \"" + label + "\",\n"
                      "  \"levels\": [";
    for (std::size_t l = 0; l < profiler::kServiceLevelCount; ++l) {
        out += l == 0 ? "\"" : ", \"";
        out += profiler::serviceLevelName(
            static_cast<profiler::ServiceLevel>(l));
        out += "\"";
    }
    out += "],\n  \"cells\": [";
    char buf[64];
    for (std::size_t row = 0; row < profiler::kServiceLevelCount;
         ++row) {
        out += row == 0 ? "[" : ", [";
        for (std::size_t col = 0; col < profiler::kServiceLevelCount;
             ++col) {
            std::snprintf(buf, sizeof(buf), "%s%llu",
                          col == 0 ? "" : ", ",
                          static_cast<unsigned long long>(
                              cells[row][col]));
            out += buf;
        }
        out += "]";
    }
    out += "],\n  \"missed\": [";
    for (std::size_t l = 0; l < profiler::kServiceLevelCount; ++l) {
        std::snprintf(buf, sizeof(buf), "%s%llu", l == 0 ? "" : ", ",
                      static_cast<unsigned long long>(missed[l]));
        out += buf;
    }
    out += "],\n  \"spurious\": [";
    for (std::size_t l = 0; l < profiler::kServiceLevelCount; ++l) {
        std::snprintf(buf, sizeof(buf), "%s%llu", l == 0 ? "" : ", ",
                      static_cast<unsigned long long>(spurious[l]));
        out += buf;
    }
    out += "],\n  \"accuracy\": [";
    for (std::size_t l = 0; l < profiler::kServiceLevelCount; ++l) {
        std::snprintf(buf, sizeof(buf), "%s%.4f", l == 0 ? "" : ", ",
                      accuracy(static_cast<profiler::ServiceLevel>(l)));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "],\n  \"overall\": %.4f\n}\n",
                  overallAccuracy());
    out += buf;
    return out;
}

ConfusionMatrix
scoreEvents(const std::vector<profiler::StallEvent> &events,
            const std::vector<LabeledInterval> &truth)
{
    ConfusionMatrix matrix;

    // Best-overlapping event per truth interval (the prediction the
    // interval is scored on).
    std::vector<uint64_t> best_overlap(truth.size(), 0);
    std::vector<int> best_level(truth.size(), -1);

    std::size_t cursor = 0;
    for (const auto &ev : events) {
        // Truth intervals ending before this event can never overlap
        // later (sorted) events either.
        while (cursor < truth.size() &&
               truth[cursor].endSample < ev.startSample)
            ++cursor;

        uint64_t ev_best = 0;
        std::size_t ev_best_idx = 0;
        bool matched = false;
        for (std::size_t t = cursor;
             t < truth.size() && truth[t].beginSample <= ev.endSample;
             ++t) {
            const uint64_t begin =
                std::max(ev.startSample, truth[t].beginSample);
            const uint64_t end =
                std::min(ev.endSample, truth[t].endSample);
            if (end < begin)
                continue;
            const uint64_t overlap = end - begin + 1;
            matched = true;
            if (overlap > ev_best) {
                ev_best = overlap;
                ev_best_idx = t;
            }
        }
        if (!matched) {
            ++matrix.spurious[static_cast<std::size_t>(ev.level)];
            continue;
        }
        if (ev_best > best_overlap[ev_best_idx]) {
            best_overlap[ev_best_idx] = ev_best;
            best_level[ev_best_idx] = static_cast<int>(ev.level);
        }
    }

    for (std::size_t t = 0; t < truth.size(); ++t) {
        const auto row = static_cast<std::size_t>(truth[t].truth);
        if (best_level[t] < 0)
            ++matrix.missed[row];
        else
            ++matrix.cells[row][static_cast<std::size_t>(
                best_level[t])];
    }
    return matrix;
}

profiler::EmProfConfig
levelValidationConfig(const sim::SimConfig &sim_config,
                      double sample_rate_hz)
{
    profiler::EmProfConfig cfg;
    cfg.clockHz = sim_config.clockHz;
    cfg.sampleRateHz = sample_rate_hz;

    const double cycle_ns = 1e9 / sim_config.clockHz;

    // The simulator's own hit/memory cut: a wait is hit-class up to
    // twice the LLC hit latency (an in-flight fill closer than that
    // never raises memoryStall), memory-class from one cycle beyond.
    // Placing the band edge on the half-cycle between the two keeps
    // both sides of the sim's boundary on the right side of ours.
    cfg.llcHitMaxNs =
        cycle_ns *
        (2.0 * static_cast<double>(sim_config.llc.hitLatency) + 0.5);

    cfg.prefetchMaskedMaxNs =
        sim_config.prefetcher.enabled
            ? cycle_ns * static_cast<double>(
                             sim_config.prefetchDemandClassCycles())
            : 0.0;

    // Shortest stall the ground truth labels refresh-lengthened: a
    // full access latency queued behind the labeling threshold.
    cfg.refreshStallNs =
        cycle_ns *
        static_cast<double>(sim_config.memory.accessLatency +
                            sim_config.refreshLengthenedCycles());

    // See LLC-hit waits (hit-latency scale) while staying above the
    // longest non-memory pipeline bubble (the divider).
    const double floor_cycles =
        static_cast<double>(sim_config.core.divLatency) + 2.0;
    cfg.minStallNs = cycle_ns * floor_cycles;

    return cfg;
}

sim::Cycle
detectorFloorCycles(const profiler::EmProfConfig &config)
{
    const double cycles_per_sample =
        config.clockHz / config.sampleRateHz;
    return static_cast<sim::Cycle>(
        static_cast<double>(config.minDurationSamples()) *
        cycles_per_sample);
}

} // namespace emprof::validate
