/**
 * @file
 * Signal file I/O.
 *
 * EMPROF is a signal-processing tool: to apply it to a *real* capture
 * (an SDR recording of an actual device) the magnitude or IQ samples
 * just need to reach EmProf::push.  This module defines a minimal
 * container — magic, version, sample rate, payload kind, raw float32
 * samples, little-endian — plus raw-f32 and CSV import/export, so the
 * tools in tools/ can exchange signals with GNU Radio-style pipelines.
 *
 * All functions run their I/O through common::io::CheckedFile; the
 * optional IoError out-parameter reports the typed failure (short
 * read, disk full, bad format, ...) instead of a bare `false`, and a
 * header whose sample count disagrees with the file size is rejected
 * before any allocation — a truncated or hostile file must never turn
 * into a plausible-looking signal or an OOM.
 */

#ifndef EMPROF_DSP_SIGNAL_IO_HPP
#define EMPROF_DSP_SIGNAL_IO_HPP

#include <string>

#include "common/io/checked_file.hpp"
#include "dsp/types.hpp"

namespace emprof::dsp {

/** Payload kind stored in an .emsig file. */
enum class SignalKind : uint32_t
{
    Magnitude = 1, ///< real samples
    Iq = 2,        ///< interleaved I/Q float pairs
};

/** What the first bytes of a signal file claim it is. */
enum class SignalFileType
{
    Unknown, ///< no recognised magic (possibly a headerless raw dump)
    Emsig,   ///< legacy .emsig container ("EMSG")
    Emcap,   ///< chunked EMCAP container ("EMCP", see src/store/)
};

/**
 * Probe a file's magic bytes.  Lets tools route a capture to the right
 * loader instead of silently misreading one format as another.
 */
SignalFileType sniffSignalFile(const std::string &path);

/**
 * Write a real series as an .emsig file (fsynced before close).
 *
 * @retval false The file could not be written; @p error (if non-null)
 *         carries the typed reason.
 */
bool saveSignal(const std::string &path, const TimeSeries &series,
                common::io::IoError *error = nullptr);

/** Write an IQ series as an .emsig file. */
bool saveSignal(const std::string &path, const ComplexSeries &series,
                common::io::IoError *error = nullptr);

/**
 * Load an .emsig file as a real series.  IQ payloads are converted to
 * magnitude (which is all EMPROF consumes).
 *
 * The header's sample count must match the file's byte count exactly;
 * a truncated payload is a typed error, not a shorter signal.
 *
 * @retval false Missing file, bad magic, size mismatch, or I/O
 *         failure; @p error (if non-null) carries the typed reason.
 */
bool loadSignal(const std::string &path, TimeSeries &out,
                common::io::IoError *error = nullptr);

/**
 * Load raw float32 samples (no header — e.g. a GNU Radio file sink).
 *
 * The file's byte count must be an exact multiple of the sample size
 * (4 bytes, or 8 for an I/Q pair): a remainder means the file is
 * truncated or not raw float32 at all, and silently dropping the tail
 * would turn garbage input into a plausible-looking profile.
 *
 * @param sample_rate_hz Sample rate to attach (raw files carry none).
 * @param iq Interpret the payload as interleaved I/Q and output
 *        magnitude.
 * @retval false Missing file, byte count not a multiple of the sample
 *         size, or I/O failure; @p error carries the typed reason.
 */
bool loadRawF32(const std::string &path, double sample_rate_hz, bool iq,
                TimeSeries &out,
                common::io::IoError *error = nullptr);

/** Write one sample per line ("time_s,magnitude") for plotting. */
bool saveCsv(const std::string &path, const TimeSeries &series,
             common::io::IoError *error = nullptr);

} // namespace emprof::dsp

#endif // EMPROF_DSP_SIGNAL_IO_HPP
