/**
 * @file
 * Window functions for FIR design and spectral analysis.
 */

#ifndef EMPROF_DSP_WINDOW_HPP
#define EMPROF_DSP_WINDOW_HPP

#include <cstddef>
#include <vector>

namespace emprof::dsp {

/** Supported window shapes. */
enum class WindowKind
{
    Rectangular,
    Hann,
    Hamming,
    Blackman,
};

/**
 * Generate a window of the given kind and length.
 *
 * @param kind Window shape.
 * @param length Number of coefficients (>= 1).
 * @return Window coefficients in [0, 1].
 */
std::vector<double> makeWindow(WindowKind kind, std::size_t length);

/** Sum of the window coefficients (for amplitude normalisation). */
double windowSum(const std::vector<double> &window);

/** Sum of squared coefficients (for power normalisation). */
double windowPowerSum(const std::vector<double> &window);

} // namespace emprof::dsp

#endif // EMPROF_DSP_WINDOW_HPP
