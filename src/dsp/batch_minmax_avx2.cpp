/**
 * @file
 * AVX2 instantiation of the batch sliding-min/max kernel.
 *
 * This translation unit is compiled with -mavx2 (and deliberately
 * without -mfma, so arithmetic rounds identically to the scalar
 * variant).  It must contain no code that runs before the dispatcher
 * has checked CPU support.
 */

#include <cstddef>

#include "dsp/batch_minmax_impl.hpp"

#if !defined(__AVX2__)
#error "batch_minmax_avx2.cpp must be compiled with -mavx2"
#endif

namespace emprof::dsp::detail {

void
slidingMinMaxBatchAvx2(const float *x, std::size_t n, std::size_t window,
                       float *outMin, float *outMax)
{
    slidingMinMaxBatchImpl<lanes::Avx2>(x, n, window, outMin, outMax);
}

void
slidingMinMaxBatchAvx2(const double *x, std::size_t n, std::size_t window,
                       double *outMin, double *outMax)
{
    slidingMinMaxBatchImpl<lanes::Avx2>(x, n, window, outMin, outMax);
}

} // namespace emprof::dsp::detail
