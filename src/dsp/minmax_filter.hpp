/**
 * @file
 * Sliding-window min/max via the van Herk–Gil–Werman (VHGW) algorithm.
 *
 * Like dsp::MovingMinMax this tracks the extrema of the last `window`
 * samples, but instead of monotonic wedges it uses the VHGW block
 * decomposition: the stream is cut into blocks of `window` samples, a
 * suffix-extrema table is built once per completed block (O(window)
 * every `window` samples), and each output is the combination of that
 * table with a running prefix extremum of the current block.  The
 * result is O(1) amortised per sample like the wedge, but with a fixed
 * ~6 comparisons per push and no data-dependent pop loops — the branch
 * predictor sees the same short path for every sample, which is what
 * the 160 Msamples/s SDR budget wants.  Because min/max are pure
 * selections (no arithmetic), the outputs are bit-identical to
 * MovingMinMax on the same input.
 *
 * The filter is templated on the sample type so the hot path can run
 * entirely in float (no double promotion) when fed SDR magnitude
 * samples; `float` and `double` are explicitly instantiated.
 */

#ifndef EMPROF_DSP_MINMAX_FILTER_HPP
#define EMPROF_DSP_MINMAX_FILTER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emprof::dsp {

/**
 * Streaming sliding-window minimum and maximum (VHGW decomposition).
 *
 * Drop-in backend for MovingMinMax: same window semantics (the window
 * covers the last min(count, window) samples, so warm-up outputs match
 * a partially filled window), same accessor names, same zero-window
 * clamp to 1.
 */
template <typename T>
class MinMaxFilter
{
  public:
    explicit MinMaxFilter(std::size_t window)
        : window_(window == 0 ? 1 : window),
          block_(window_),
          sufMin_(window_),
          sufMax_(window_)
    {}

    /** Push one sample. */
    void
    push(T x)
    {
        const std::size_t p = pos_;
        if (p == 0 && count_ > 0)
            buildSuffixes();

        block_[p] = x;
        if (p == 0) {
            preMin_ = x;
            preMax_ = x;
        } else {
            preMin_ = x < preMin_ ? x : preMin_;
            preMax_ = x > preMax_ ? x : preMax_;
        }
        ++count_;
        pos_ = (p + 1 == window_) ? 0 : p + 1;

        if (count_ <= window_ || p == window_ - 1) {
            // Warm-up (window is the whole block so far) or the window
            // aligns exactly with the current block: prefix only.
            curMin_ = preMin_;
            curMax_ = preMax_;
        } else {
            // Window spans the previous block's tail [p+1, window) and
            // the current block's head [0, p].
            const T sm = sufMin_[p + 1];
            const T sM = sufMax_[p + 1];
            curMin_ = sm < preMin_ ? sm : preMin_;
            curMax_ = sM > preMax_ ? sM : preMax_;
        }
    }

    /** Minimum over the current window (requires >= 1 sample pushed). */
    T min() const { return curMin_; }

    /** Maximum over the current window (requires >= 1 sample pushed). */
    T max() const { return curMax_; }

    /** True once a full window of samples has been observed. */
    bool warm() const { return count_ >= window_; }

    /** Number of samples pushed so far. */
    uint64_t count() const { return count_; }

    void
    reset()
    {
        pos_ = 0;
        count_ = 0;
    }

    std::size_t window() const { return window_; }

  private:
    /** Build the suffix-extrema tables of the just-completed block. */
    void
    buildSuffixes()
    {
        T mn = block_[window_ - 1];
        T mx = mn;
        sufMin_[window_ - 1] = mn;
        sufMax_[window_ - 1] = mx;
        for (std::size_t j = window_ - 1; j-- > 0;) {
            const T v = block_[j];
            mn = v < mn ? v : mn;
            mx = v > mx ? v : mx;
            sufMin_[j] = mn;
            sufMax_[j] = mx;
        }
    }

    std::size_t window_;
    std::vector<T> block_;  // current (possibly partial) block
    std::vector<T> sufMin_; // suffix minima of the previous block
    std::vector<T> sufMax_; // suffix maxima of the previous block
    std::size_t pos_ = 0;   // next write position within the block
    uint64_t count_ = 0;
    T preMin_{};
    T preMax_{};
    T curMin_{};
    T curMax_{};
};

extern template class MinMaxFilter<float>;
extern template class MinMaxFilter<double>;

/**
 * Batch helper: per-sample sliding min/max of a whole series.
 *
 * out_min[i] / out_max[i] are the extrema of in[max(0, i-window+1) .. i],
 * matching the streaming filter output sample for sample.
 */
template <typename T>
void
slidingMinMax(const std::vector<T> &in, std::size_t window,
              std::vector<T> &out_min, std::vector<T> &out_max)
{
    out_min.resize(in.size());
    out_max.resize(in.size());
    MinMaxFilter<T> filter(window);
    for (std::size_t i = 0; i < in.size(); ++i) {
        filter.push(in[i]);
        out_min[i] = filter.min();
        out_max[i] = filter.max();
    }
}

} // namespace emprof::dsp

#endif // EMPROF_DSP_MINMAX_FILTER_HPP
