/**
 * @file
 * Batch statistics over sample vectors: mean, percentiles, histograms.
 *
 * These back the profile reports (Table IV, Fig. 11) and tests.
 */

#ifndef EMPROF_DSP_SERIES_OPS_HPP
#define EMPROF_DSP_SERIES_OPS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "dsp/types.hpp"

namespace emprof::dsp {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 for fewer than 2 values. */
double stddev(const std::vector<double> &values);

/**
 * Percentile by linear interpolation between order statistics.
 *
 * @param values Input values (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/**
 * Same interpolation as percentile() but over an already ascending-
 * sorted vector — callers extracting several percentiles sort once
 * instead of paying a copy + sort per call.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/**
 * Fixed-bin histogram with optional logarithmic bin edges.
 *
 * Fig. 11 plots stall-latency histograms whose interesting structure
 * spans from tens to thousands of cycles, so log bins are the default
 * for latency data.
 */
class Histogram
{
  public:
    /**
     * Construct with linear bins.
     *
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin.
     * @param num_bins Number of bins (>= 1).
     */
    static Histogram linear(double lo, double hi, std::size_t num_bins);

    /**
     * Construct with logarithmically spaced bins.
     *
     * @param lo Lower edge (> 0).
     * @param hi Upper edge (> lo).
     * @param num_bins Number of bins (>= 1).
     */
    static Histogram logarithmic(double lo, double hi, std::size_t num_bins);

    /** Add one value; out-of-range values land in under/overflow. */
    void add(double value);

    /** Count in bin i. */
    uint64_t count(std::size_t i) const { return counts_[i]; }

    /** Values below the first edge. */
    uint64_t underflow() const { return underflow_; }

    /** Values at or above the last edge. */
    uint64_t overflow() const { return overflow_; }

    /** Total values added (including under/overflow). */
    uint64_t total() const { return total_; }

    std::size_t numBins() const { return counts_.size(); }

    /** Lower edge of bin i (edges has numBins()+1 entries). */
    double edge(std::size_t i) const { return edges_[i]; }

    /** Render as an aligned text table with unit-labelled edges. */
    std::string toText(const std::string &unit = "") const;

  private:
    Histogram(std::vector<double> edges, bool log_bins);

    std::vector<double> edges_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    bool log_bins_;
};

} // namespace emprof::dsp

#endif // EMPROF_DSP_SERIES_OPS_HPP
