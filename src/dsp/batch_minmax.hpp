/**
 * @file
 * Batch (whole-buffer) sliding min/max with runtime SIMD dispatch.
 *
 * slidingMinMaxBatch computes, for every index i,
 *
 *     outMin[i] = min(x[max(0, i-window+1) .. i])
 *     outMax[i] = max(x[max(0, i-window+1) .. i])
 *
 * i.e. exactly what streaming MinMaxFilter<T> reports sample by sample,
 * via the same VHGW block decomposition but vectorised: the per-block
 * suffix table is built with an 8-wide (float) / 4-wide (double)
 * backward log-scan, and the forward prefix+combine pass is likewise
 * vectorised.
 *
 * Parity contract:
 *  - the Scalar and Avx2 variants are the *same* templated body
 *    instantiated over the two lane policies in simd_lanes.hpp, so
 *    they are bit-identical for every input, including NaN and
 *    denormals (the scalar policy replicates intrinsic lane
 *    semantics);
 *  - for finite inputs both variants are bit-identical to the
 *    streaming MinMaxFilter<T>, because min/max are pure selections
 *    and every window extremum is selection-order independent.  For
 *    NaN inputs the streaming filter's sequential fold and the batch
 *    log-scan tree can legitimately disagree (min/max are not
 *    associative in the presence of NaN); callers that need NaN
 *    bit-parity with the streaming filter must pre-screen.
 *
 * Dispatch: the AVX2 variant is used when (a) the library was built
 * without EMPROF_DISABLE_SIMD, (b) the CPU reports AVX2, and (c) the
 * EMPROF_SIMD environment variable does not force "scalar".  Forced
 * per-variant entry points exist for the parity tests.
 */

#ifndef EMPROF_DSP_BATCH_MINMAX_HPP
#define EMPROF_DSP_BATCH_MINMAX_HPP

#include <cstddef>

namespace emprof::dsp {

/** Which kernel implementation a batch call runs. */
enum class SimdVariant {
    Scalar = 0,
    Avx2 = 1,
};

/** Human-readable variant name ("scalar" / "avx2"). */
const char *simdVariantName(SimdVariant v);

/**
 * Variant the dispatched entry points will use, after compile options
 * (EMPROF_DISABLE_SIMD), CPU feature detection and the EMPROF_SIMD
 * environment override ("scalar" forces the reference path, "avx2"
 * requests the SIMD path if available).  Cached after the first call.
 */
SimdVariant activeSimdVariant();

/** True if the AVX2 kernels are compiled in and this CPU supports them. */
bool avx2Available();

/** Per-sample sliding window extrema of x[0..n); dispatched variant. */
void slidingMinMaxBatch(const float *x, std::size_t n, std::size_t window,
                        float *outMin, float *outMax);
void slidingMinMaxBatch(const double *x, std::size_t n, std::size_t window,
                        double *outMin, double *outMax);

/** Forced-variant entry points (for tests). Scalar is always valid;
 *  requesting Avx2 when !avx2Available() falls back to Scalar. */
void slidingMinMaxBatchVariant(SimdVariant v, const float *x, std::size_t n,
                               std::size_t window, float *outMin,
                               float *outMax);
void slidingMinMaxBatchVariant(SimdVariant v, const double *x, std::size_t n,
                               std::size_t window, double *outMin,
                               double *outMax);

} // namespace emprof::dsp

#endif // EMPROF_DSP_BATCH_MINMAX_HPP
