#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

namespace emprof::dsp {

std::vector<double>
makeWindow(WindowKind kind, std::size_t length)
{
    std::vector<double> w(length, 1.0);
    if (length <= 1)
        return w;

    const double n1 = static_cast<double>(length - 1);
    constexpr double two_pi = 2.0 * std::numbers::pi;
    constexpr double four_pi = 4.0 * std::numbers::pi;

    for (std::size_t n = 0; n < length; ++n) {
        const double x = static_cast<double>(n) / n1;
        switch (kind) {
          case WindowKind::Rectangular:
            w[n] = 1.0;
            break;
          case WindowKind::Hann:
            w[n] = 0.5 - 0.5 * std::cos(two_pi * x);
            break;
          case WindowKind::Hamming:
            w[n] = 0.54 - 0.46 * std::cos(two_pi * x);
            break;
          case WindowKind::Blackman:
            w[n] = 0.42 - 0.5 * std::cos(two_pi * x) +
                   0.08 * std::cos(four_pi * x);
            break;
        }
    }
    return w;
}

double
windowSum(const std::vector<double> &window)
{
    double acc = 0.0;
    for (double c : window)
        acc += c;
    return acc;
}

double
windowPowerSum(const std::vector<double> &window)
{
    double acc = 0.0;
    for (double c : window)
        acc += c * c;
    return acc;
}

} // namespace emprof::dsp
