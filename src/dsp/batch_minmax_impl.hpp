/**
 * @file
 * Shared templated body of slidingMinMaxBatch.
 *
 * Included by exactly two translation units: batch_minmax.cpp
 * (instantiated over lanes::Scalar) and batch_minmax_avx2.cpp
 * (instantiated over lanes::Avx2, built with -mavx2 and no FMA).  Both
 * instantiations execute the identical sequence of lane operations, so
 * their outputs are bit-identical for every input — see
 * batch_minmax.hpp for the full parity contract.
 */

#ifndef EMPROF_DSP_BATCH_MINMAX_IMPL_HPP
#define EMPROF_DSP_BATCH_MINMAX_IMPL_HPP

#include <algorithm>
#include <limits>
#include <vector>

#include "dsp/simd_lanes.hpp"

namespace emprof::dsp::detail {

/** Width-8 float lane ops of policy L, under one generic interface. */
template <class L>
struct OpsF
{
    using T = float;
    using V = typename L::F8;
    static constexpr std::size_t W = 8;
    static V set1(T x) { return L::f8_set1(x); }
    static V loadu(const T *p) { return L::f8_loadu(p); }
    static void storeu(T *p, V v) { L::f8_storeu(p, v); }
    static V vmin(V a, V b) { return L::f8_min(a, b); }
    static V vmax(V a, V b) { return L::f8_max(a, b); }
    static V bcastLast(V v) { return L::f8_broadcast7(v); }
    static V bcastFirst(V v) { return L::f8_broadcast0(v); }
    static T lane0(V v) { return L::f8_lane0(v); }
    /** In-vector prefix (upward) min log-scan. */
    static V
    scanUpMin(V v, V fill)
    {
        V m = v;
        m = L::f8_min(m, L::template f8_slide_up<1>(m, fill));
        m = L::f8_min(m, L::template f8_slide_up<2>(m, fill));
        m = L::f8_min(m, L::template f8_slide_up<4>(m, fill));
        return m;
    }
    static V
    scanUpMax(V v, V fill)
    {
        V m = v;
        m = L::f8_max(m, L::template f8_slide_up<1>(m, fill));
        m = L::f8_max(m, L::template f8_slide_up<2>(m, fill));
        m = L::f8_max(m, L::template f8_slide_up<4>(m, fill));
        return m;
    }
    /** In-vector suffix (downward) min log-scan. */
    static V
    scanDnMin(V v, V fill)
    {
        V m = v;
        m = L::f8_min(m, L::template f8_slide_dn<1>(m, fill));
        m = L::f8_min(m, L::template f8_slide_dn<2>(m, fill));
        m = L::f8_min(m, L::template f8_slide_dn<4>(m, fill));
        return m;
    }
    static V
    scanDnMax(V v, V fill)
    {
        V m = v;
        m = L::f8_max(m, L::template f8_slide_dn<1>(m, fill));
        m = L::f8_max(m, L::template f8_slide_dn<2>(m, fill));
        m = L::f8_max(m, L::template f8_slide_dn<4>(m, fill));
        return m;
    }
};

/** Width-4 double lane ops of policy L. */
template <class L>
struct OpsD
{
    using T = double;
    using V = typename L::D4;
    static constexpr std::size_t W = 4;
    static V set1(T x) { return L::d4_set1(x); }
    static V loadu(const T *p) { return L::d4_loadu(p); }
    static void storeu(T *p, V v) { L::d4_storeu(p, v); }
    static V vmin(V a, V b) { return L::d4_min(a, b); }
    static V vmax(V a, V b) { return L::d4_max(a, b); }
    static V bcastLast(V v) { return L::d4_broadcast3(v); }
    static V bcastFirst(V v) { return L::d4_broadcast0(v); }
    static T lane0(V v) { return L::d4_lane0(v); }
    static V
    scanUpMin(V v, V fill)
    {
        V m = v;
        m = L::d4_min(m, L::template d4_slide_up<1>(m, fill));
        m = L::d4_min(m, L::template d4_slide_up<2>(m, fill));
        return m;
    }
    static V
    scanUpMax(V v, V fill)
    {
        V m = v;
        m = L::d4_max(m, L::template d4_slide_up<1>(m, fill));
        m = L::d4_max(m, L::template d4_slide_up<2>(m, fill));
        return m;
    }
    static V
    scanDnMin(V v, V fill)
    {
        V m = v;
        m = L::d4_min(m, L::template d4_slide_dn<1>(m, fill));
        m = L::d4_min(m, L::template d4_slide_dn<2>(m, fill));
        return m;
    }
    static V
    scanDnMax(V v, V fill)
    {
        V m = v;
        m = L::d4_max(m, L::template d4_slide_dn<1>(m, fill));
        m = L::d4_max(m, L::template d4_slide_dn<2>(m, fill));
        return m;
    }
};

template <class L, typename T>
struct OpsFor;
template <class L>
struct OpsFor<L, float>
{
    using type = OpsF<L>;
};
template <class L>
struct OpsFor<L, double>
{
    using type = OpsD<L>;
};

/**
 * Suffix-extrema tables of one complete block of @p w samples:
 * smin[j] = min(x[j..w)), smax[j] = max(x[j..w)).
 */
template <class Ops, typename T>
void
suffixScanBlock(const T *x, std::size_t w, T *smin, T *smax)
{
    using V = typename Ops::V;
    constexpr std::size_t W = Ops::W;
    const T inf = std::numeric_limits<T>::infinity();
    const V fmin = Ops::set1(inf);
    const V fmax = Ops::set1(-inf);
    V cmin = fmin;
    V cmax = fmax;
    std::size_t i = w;
    // Vector part covers the final W*floor(w/W) samples; the scalar
    // head (w % W leading samples) continues the same backward fold.
    while (i >= W) {
        i -= W;
        V v = Ops::loadu(x + i);
        V m = Ops::scanDnMin(v, fmin);
        V M = Ops::scanDnMax(v, fmax);
        m = Ops::vmin(m, cmin);
        M = Ops::vmax(M, cmax);
        Ops::storeu(smin + i, m);
        Ops::storeu(smax + i, M);
        cmin = Ops::bcastFirst(m);
        cmax = Ops::bcastFirst(M);
    }
    T sm = Ops::lane0(cmin);
    T sM = Ops::lane0(cmax);
    while (i > 0) {
        --i;
        const T v = x[i];
        sm = v < sm ? v : sm;
        sM = v > sM ? v : sM;
        smin[i] = sm;
        smax[i] = sM;
    }
}

/**
 * Forward prefix + combine pass over one (possibly partial) block.
 * sprevMin/sprevMax are the previous block's suffix tables with a
 * +inf/-inf sentinel at index w (handles the p == w-1 prefix-only
 * case branch-free); ignored when @p first is true.
 */
template <class Ops, typename T>
void
forwardPassBlock(const T *x, std::size_t len, const T *sprevMin,
                 const T *sprevMax, bool first, T *omin, T *omax)
{
    using V = typename Ops::V;
    constexpr std::size_t W = Ops::W;
    const T inf = std::numeric_limits<T>::infinity();
    const V fmin = Ops::set1(inf);
    const V fmax = Ops::set1(-inf);
    V cmin = fmin;
    V cmax = fmax;
    std::size_t i = 0;
    for (; i + W <= len; i += W) {
        V v = Ops::loadu(x + i);
        V m = Ops::scanUpMin(v, fmin);
        V M = Ops::scanUpMax(v, fmax);
        m = Ops::vmin(m, cmin);
        M = Ops::vmax(M, cmax);
        cmin = Ops::bcastLast(m);
        cmax = Ops::bcastLast(M);
        V lo = m;
        V hi = M;
        if (!first) {
            // Suffix operand first: matches the streaming combine
            // `sm < preMin ? sm : preMin` lane for lane.
            lo = Ops::vmin(Ops::loadu(sprevMin + i + 1), m);
            hi = Ops::vmax(Ops::loadu(sprevMax + i + 1), M);
        }
        Ops::storeu(omin + i, lo);
        Ops::storeu(omax + i, hi);
    }
    T sm = Ops::lane0(cmin);
    T sM = Ops::lane0(cmax);
    for (; i < len; ++i) {
        const T xv = x[i];
        sm = xv < sm ? xv : sm;
        sM = xv > sM ? xv : sM;
        T lo = sm;
        T hi = sM;
        if (!first) {
            T a = sprevMin[i + 1];
            lo = a < lo ? a : lo;
            a = sprevMax[i + 1];
            hi = a > hi ? a : hi;
        }
        omin[i] = lo;
        omax[i] = hi;
    }
}

/** Full batch kernel: VHGW blocks of @p w anchored at index 0. */
template <class L, typename T>
void
slidingMinMaxBatchImpl(const T *x, std::size_t n, std::size_t w, T *omin,
                       T *omax)
{
    using Ops = typename OpsFor<L, T>::type;
    constexpr std::size_t W = Ops::W;
    if (n == 0)
        return;
    if (w == 0)
        w = 1; // match MinMaxFilter's zero-window clamp
    const T inf = std::numeric_limits<T>::infinity();

    // Two suffix-table buffers (previous / current block), each with a
    // sentinel at [w] and W slack lanes for unmasked vector loads.
    std::vector<T> bufMinA(w + W, inf), bufMaxA(w + W, -inf);
    std::vector<T> bufMinB(w + W, inf), bufMaxB(w + W, -inf);
    T *sprevMin = bufMinA.data();
    T *sprevMax = bufMaxA.data();
    T *scurMin = bufMinB.data();
    T *scurMax = bufMaxB.data();

    const std::size_t nblocks = (n + w - 1) / w;
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t B = b * w;
        const std::size_t len = std::min(w, n - B);
        forwardPassBlock<Ops, T>(x + B, len, sprevMin, sprevMax, b == 0,
                                 omin + B, omax + B);
        if (b + 1 < nblocks) {
            // Not the last block, so this block is complete (len == w).
            suffixScanBlock<Ops, T>(x + B, w, scurMin, scurMax);
            std::swap(sprevMin, scurMin);
            std::swap(sprevMax, scurMax);
        }
    }
}

} // namespace emprof::dsp::detail

#endif // EMPROF_DSP_BATCH_MINMAX_IMPL_HPP
