/**
 * @file
 * Deterministic, seeded RF-impairment injection.
 *
 * Real EM captures are never as clean as the simulator's output: probe
 * coupling drifts, mains hum rides on the supply, the ADC clips on
 * nearby transmitters, USB hiccups drop samples.  This module models
 * those impairments as a composable transform over any magnitude
 * stream, so robustness tests can degrade the golden fixture in memory
 * and `emprof_capture --impair` can record realistic captures.
 *
 * Everything is seeded: the same spec + seed produces bit-identical
 * output, sample for sample, which is what lets the SNR-ladder tests
 * assert exact streaming/parallel equivalence at every rung.  Each
 * impairment draws from its own seed-derived RNG stream, so enabling
 * one (say, impulses) does not perturb another's sequence (the AWGN).
 */

#ifndef EMPROF_DSP_IMPAIRMENT_HPP
#define EMPROF_DSP_IMPAIRMENT_HPP

#include <cstdint>
#include <limits>
#include <string>

#include "dsp/noise.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace emprof::dsp {

/**
 * One composable impairment chain.  Defaults are all inert: a
 * default-constructed spec is an exact no-op.
 *
 * Amplitudes (impulse, clip, hum, AWGN sigma) are expressed relative to
 * a reference level — the series RMS in batch mode, or an explicit
 * referenceLevel for streaming use where the RMS is not yet known.
 */
struct ImpairmentSpec
{
    /** AWGN at this signal-to-noise ratio in dB; +inf disables. */
    double snrDb = std::numeric_limits<double>::infinity();

    /** Slow multiplicative gain drift: gain swings by ±this fraction
     *  sinusoidally with the period below (probe creep, thermal). */
    double gainDriftFraction = 0.0;
    double gainDriftPeriodSeconds = 0.5;

    /** Per-sample probability of a bipolar single-sample spike of
     *  `impulseAmplitude` × reference (ignition, ESD, radar). */
    double impulseRate = 0.0;
    double impulseAmplitude = 8.0;

    /** Per-sample probability of starting a dropout of
     *  `dropoutLenSamples`; dropped samples read zero, or repeat the
     *  last delivered value when `dropoutHold` is set (USB stall with
     *  a sample-and-hold front end). */
    double dropoutRate = 0.0;
    uint64_t dropoutLenSamples = 32;
    bool dropoutHold = false;

    /** ADC full-scale at this multiple of reference; +inf disables. */
    double clipLevel = std::numeric_limits<double>::infinity();

    /** Additive mains hum: depth × reference at humHz (50/60 Hz). */
    double humHz = 0.0;
    double humDepth = 0.0;

    /** Amplitude reference; <= 0 means "derive from the series RMS"
     *  (batch apply) or 1.0 (streaming, where no RMS exists yet). */
    double referenceLevel = 0.0;

    /** Master seed; every sub-generator derives its own stream. */
    uint64_t seed = 0x1337c0deull;

    /** True when any impairment is actually enabled. */
    bool any() const;

    /** Reject non-finite/out-of-range fields with a one-line reason. */
    bool validate(std::string *why = nullptr) const;
};

/**
 * Parse a comma-separated impairment spec, e.g.
 * "snr=20,drift=0.2:0.1,dropout=1e-4:64:hold,seed=7".  Tokens are
 * either `key=value[:sub[:sub]]` settings or preset names; later
 * tokens override earlier ones, so "harsh,snr=30" is harsh with the
 * noise eased off.  See impairmentSpecHelp() for the full grammar.
 */
bool parseImpairmentSpec(const std::string &text, ImpairmentSpec &out,
                         std::string *why = nullptr);

/** Usage text describing the spec grammar and presets (for tools). */
const char *impairmentSpecHelp();

/** What an injection pass actually did (for reports and metrics). */
struct ImpairmentStats
{
    uint64_t samples = 0;
    uint64_t impulses = 0;
    uint64_t dropoutSamples = 0;
    uint64_t clippedSamples = 0;
    double referenceLevel = 0.0;
};

/**
 * Streaming impairment injector: push samples through, get impaired
 * samples out.  Stateful (dropout runs, RNG streams) but fully
 * deterministic for a given (spec, sample_rate) pair.
 */
class ImpairmentInjector
{
  public:
    /**
     * @param spec Validated impairment chain.
     * @param sample_rate_hz Rate of the stream being impaired; drives
     *        the drift/hum oscillator phases.  Non-positive rates fall
     *        back to 1 Hz (periods are then measured in samples).
     */
    ImpairmentInjector(const ImpairmentSpec &spec, double sample_rate_hz);

    /** Impair one sample.  Output is floored at zero: the stream is a
     *  received magnitude, and no analog impairment makes it negative. */
    Sample push(Sample x);

    const ImpairmentStats &stats() const { return stats_; }

    double referenceLevel() const { return reference_; }

  private:
    ImpairmentSpec spec_;
    double reference_;
    double sampleRateHz_;
    double driftPhase_ = 0.0;
    double humPhase_ = 0.0;
    double clipAbs_;
    AwgnSource noise_;
    Rng impulseRng_;
    Rng dropoutRng_;
    uint64_t index_ = 0;
    uint64_t dropoutRemaining_ = 0;
    Sample lastOut_ = 0.0f;
    ImpairmentStats stats_;
};

/**
 * Batch transform: impair a whole series in place.  When the spec has
 * no explicit referenceLevel the series RMS is used, so `snr=20` means
 * 20 dB below the actual signal power regardless of capture gain.
 */
void applyImpairments(TimeSeries &series, const ImpairmentSpec &spec,
                      ImpairmentStats *stats = nullptr);

} // namespace emprof::dsp

#endif // EMPROF_DSP_IMPAIRMENT_HPP
