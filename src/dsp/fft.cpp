#include "dsp/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace emprof::dsp {

namespace {

/** Shared Cooley-Tukey core; sign selects forward (-1) / inverse (+1). */
void
transform(std::vector<std::complex<double>> &data, double sign)
{
    const std::size_t n = data.size();
    assert(isPowerOfTwo(n) && "FFT length must be a power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            sign * 2.0 * std::numbers::pi / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const auto u = data[i + k];
                const auto v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

} // namespace

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<std::complex<double>> &data)
{
    transform(data, -1.0);
}

void
ifft(std::vector<std::complex<double>> &data)
{
    transform(data, +1.0);
    const double inv = 1.0 / static_cast<double>(data.size());
    for (auto &x : data)
        x *= inv;
}

std::vector<double>
magnitudeSpectrum(const std::vector<double> &frame, std::size_t fft_size)
{
    assert(isPowerOfTwo(fft_size));
    assert(fft_size >= frame.size());

    std::vector<std::complex<double>> buf(fft_size, {0.0, 0.0});
    for (std::size_t i = 0; i < frame.size(); ++i)
        buf[i] = {frame[i], 0.0};
    fft(buf);

    std::vector<double> mags(fft_size / 2 + 1);
    for (std::size_t i = 0; i < mags.size(); ++i)
        mags[i] = std::abs(buf[i]);
    return mags;
}

} // namespace emprof::dsp
