#include "dsp/series_ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace emprof::dsp {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        std::clamp(p, 0.0, 100.0) / 100.0 *
        static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(std::vector<double> edges, bool log_bins)
    : edges_(std::move(edges)),
      counts_(edges_.size() - 1, 0),
      log_bins_(log_bins)
{
    assert(edges_.size() >= 2);
}

Histogram
Histogram::linear(double lo, double hi, std::size_t num_bins)
{
    assert(num_bins >= 1 && hi > lo);
    std::vector<double> edges(num_bins + 1);
    for (std::size_t i = 0; i <= num_bins; ++i)
        edges[i] = lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(num_bins);
    return Histogram(std::move(edges), false);
}

Histogram
Histogram::logarithmic(double lo, double hi, std::size_t num_bins)
{
    assert(num_bins >= 1 && lo > 0.0 && hi > lo);
    std::vector<double> edges(num_bins + 1);
    const double llo = std::log(lo);
    const double lhi = std::log(hi);
    for (std::size_t i = 0; i <= num_bins; ++i)
        edges[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                      static_cast<double>(num_bins));
    return Histogram(std::move(edges), true);
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < edges_.front()) {
        ++underflow_;
        return;
    }
    if (value >= edges_.back()) {
        ++overflow_;
        return;
    }
    // Binary search for the containing bin.
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    const std::size_t bin =
        static_cast<std::size_t>(std::distance(edges_.begin(), it)) - 1;
    ++counts_[bin];
}

std::string
Histogram::toText(const std::string &unit) const
{
    std::string out;
    char line[160];
    uint64_t max_count = 1;
    for (uint64_t c : counts_)
        max_count = std::max(max_count, c);

    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const int bar_len =
            static_cast<int>(50.0 * static_cast<double>(counts_[i]) /
                             static_cast<double>(max_count));
        std::snprintf(line, sizeof(line), "  [%10.1f, %10.1f) %-4s %8llu |",
                      edges_[i], edges_[i + 1], unit.c_str(),
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
        out.append(static_cast<std::size_t>(bar_len), '#');
        out += '\n';
    }
    if (underflow_ || overflow_) {
        std::snprintf(line, sizeof(line),
                      "  underflow %llu, overflow %llu\n",
                      static_cast<unsigned long long>(underflow_),
                      static_cast<unsigned long long>(overflow_));
        out += line;
    }
    return out;
}

} // namespace emprof::dsp
