#include "dsp/impairment.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"

namespace emprof::dsp {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** Independent RNG stream per impairment, all derived from one seed. */
uint64_t
derivedSeed(uint64_t seed, uint64_t stream)
{
    uint64_t state = seed ^ (0xd1f4a7c15eedbeefull * (stream + 1));
    return splitMix64(state);
}

/** Map a raw 64-bit draw to [0, 1). */
double
toUnit(uint64_t word)
{
    return static_cast<double>(word >> 11) * 0x1.0p-53;
}

/** Strict double parse: the whole token must be a finite number. */
bool
parseNumber(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size() ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

bool
parseUnsigned(const std::string &text, uint64_t &out)
{
    if (text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (true) {
        const std::size_t next = text.find(sep, pos);
        if (next == std::string::npos) {
            parts.push_back(text.substr(pos));
            return parts;
        }
        parts.push_back(text.substr(pos, next - pos));
        pos = next + 1;
    }
}

/** Reset every impairment field (seed and reference survive presets). */
void
clearImpairments(ImpairmentSpec &spec)
{
    const uint64_t seed = spec.seed;
    const double reference = spec.referenceLevel;
    spec = ImpairmentSpec{};
    spec.seed = seed;
    spec.referenceLevel = reference;
}

bool
applyPreset(const std::string &name, ImpairmentSpec &spec)
{
    if (name == "clean") {
        clearImpairments(spec);
        return true;
    }
    if (name == "mild") {
        clearImpairments(spec);
        spec.snrDb = 30.0;
        spec.gainDriftFraction = 0.1;
        return true;
    }
    if (name == "harsh") {
        clearImpairments(spec);
        spec.snrDb = 12.0;
        spec.gainDriftFraction = 0.3;
        spec.gainDriftPeriodSeconds = 0.2;
        spec.impulseRate = 2e-4;
        spec.impulseAmplitude = 6.0;
        spec.dropoutRate = 5e-5;
        spec.dropoutLenSamples = 48;
        spec.dropoutHold = false;
        spec.clipLevel = 2.5;
        spec.humHz = 50.0;
        spec.humDepth = 0.05;
        return true;
    }
    return false;
}

/** Batched (once per apply, never per sample) injection accounting. */
void
countApply(const ImpairmentStats &stats)
{
    if (!obs::MetricsRegistry::enabled())
        return;
    auto &registry = obs::MetricsRegistry::instance();
    static const obs::Counter samples =
        registry.counter("impair.samples");
    static const obs::Counter impulses =
        registry.counter("impair.impulses");
    static const obs::Counter dropouts =
        registry.counter("impair.dropout_samples");
    static const obs::Counter clipped =
        registry.counter("impair.clipped_samples");
    samples.add(stats.samples);
    impulses.add(stats.impulses);
    dropouts.add(stats.dropoutSamples);
    clipped.add(stats.clippedSamples);
}

} // namespace

bool
ImpairmentSpec::any() const
{
    return std::isfinite(snrDb) || gainDriftFraction > 0.0 ||
           impulseRate > 0.0 || dropoutRate > 0.0 ||
           std::isfinite(clipLevel) || (humHz > 0.0 && humDepth > 0.0);
}

bool
ImpairmentSpec::validate(std::string *why) const
{
    const auto bad = [&](const char *reason) {
        if (why != nullptr)
            *why = reason;
        return false;
    };
    if (std::isnan(snrDb) || snrDb == -std::numeric_limits<double>::infinity())
        return bad("snr must be a number (or +inf to disable)");
    if (!std::isfinite(gainDriftFraction) || gainDriftFraction < 0.0 ||
        gainDriftFraction > 10.0)
        return bad("drift fraction must be in [0, 10]");
    if (!std::isfinite(gainDriftPeriodSeconds) ||
        gainDriftPeriodSeconds <= 0.0)
        return bad("drift period must be finite and > 0");
    if (!std::isfinite(impulseRate) || impulseRate < 0.0 ||
        impulseRate > 1.0)
        return bad("impulse rate must be a probability in [0, 1]");
    if (!std::isfinite(impulseAmplitude) || impulseAmplitude < 0.0)
        return bad("impulse amplitude must be finite and >= 0");
    if (!std::isfinite(dropoutRate) || dropoutRate < 0.0 ||
        dropoutRate > 1.0)
        return bad("dropout rate must be a probability in [0, 1]");
    if (dropoutLenSamples == 0)
        return bad("dropout length must be >= 1 sample");
    if (std::isnan(clipLevel) || clipLevel <= 0.0)
        return bad("clip level must be > 0 (or +inf to disable)");
    if (!std::isfinite(humHz) || humHz < 0.0)
        return bad("hum frequency must be finite and >= 0");
    if (!std::isfinite(humDepth) || humDepth < 0.0)
        return bad("hum depth must be finite and >= 0");
    if (!std::isfinite(referenceLevel) || referenceLevel < 0.0)
        return bad("reference level must be finite and >= 0");
    return true;
}

const char *
impairmentSpecHelp()
{
    return "impairment spec: comma-separated settings and/or presets;\n"
           "later tokens override earlier ones.\n"
           "  snr=<db>                  AWGN at this SNR vs signal RMS\n"
           "  drift=<frac>[:<period_s>] sinusoidal gain drift (+-frac)\n"
           "  impulse=<rate>[:<amp>]    bipolar spikes, amp x RMS\n"
           "  dropout=<rate>[:<len>[:zero|hold]]  sample dropouts\n"
           "  clip=<mult>               ADC full-scale at mult x RMS\n"
           "  hum=<hz>[:<depth>]        additive mains hum\n"
           "  ref=<level>               explicit amplitude reference\n"
           "  seed=<n>                  master seed (deterministic)\n"
           "presets: clean, mild (snr=30,drift=0.1),\n"
           "  harsh (snr=12,drift=0.3:0.2,impulse=2e-4:6,\n"
           "         dropout=5e-5:48:zero,clip=2.5,hum=50:0.05)\n";
}

bool
parseImpairmentSpec(const std::string &text, ImpairmentSpec &out,
                    std::string *why)
{
    const auto fail = [&](const std::string &reason) {
        if (why != nullptr)
            *why = reason;
        return false;
    };
    if (text.empty())
        return fail("empty impairment spec");

    ImpairmentSpec spec = out;
    for (const std::string &token : split(text, ',')) {
        if (token.empty())
            return fail("empty token in impairment spec");
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (!applyPreset(token, spec))
                return fail("unknown impairment preset '" + token + "'");
            continue;
        }
        const std::string key = token.substr(0, eq);
        const auto parts = split(token.substr(eq + 1), ':');
        const auto number = [&](std::size_t idx, double &value) {
            return idx < parts.size() && parseNumber(parts[idx], value);
        };
        if (key == "snr") {
            if (parts.size() != 1 || !number(0, spec.snrDb))
                return fail("snr wants snr=<db>");
        } else if (key == "drift") {
            if (parts.size() > 2 || !number(0, spec.gainDriftFraction))
                return fail("drift wants drift=<frac>[:<period_s>]");
            if (parts.size() == 2 &&
                !number(1, spec.gainDriftPeriodSeconds))
                return fail("drift period must be a number");
        } else if (key == "impulse") {
            if (parts.size() > 2 || !number(0, spec.impulseRate))
                return fail("impulse wants impulse=<rate>[:<amp>]");
            if (parts.size() == 2 && !number(1, spec.impulseAmplitude))
                return fail("impulse amplitude must be a number");
        } else if (key == "dropout") {
            if (parts.size() > 3 || !number(0, spec.dropoutRate))
                return fail(
                    "dropout wants dropout=<rate>[:<len>[:zero|hold]]");
            if (parts.size() >= 2 &&
                !parseUnsigned(parts[1], spec.dropoutLenSamples))
                return fail("dropout length must be a sample count");
            if (parts.size() == 3) {
                if (parts[2] == "zero")
                    spec.dropoutHold = false;
                else if (parts[2] == "hold")
                    spec.dropoutHold = true;
                else
                    return fail("dropout mode must be 'zero' or 'hold'");
            }
        } else if (key == "clip") {
            if (parts.size() != 1 || !number(0, spec.clipLevel))
                return fail("clip wants clip=<mult>");
        } else if (key == "hum") {
            if (parts.size() > 2 || !number(0, spec.humHz))
                return fail("hum wants hum=<hz>[:<depth>]");
            if (parts.size() == 2) {
                if (!number(1, spec.humDepth))
                    return fail("hum depth must be a number");
            } else if (spec.humDepth <= 0.0) {
                spec.humDepth = 0.05;
            }
        } else if (key == "ref") {
            if (parts.size() != 1 || !number(0, spec.referenceLevel))
                return fail("ref wants ref=<level>");
        } else if (key == "seed") {
            if (parts.size() != 1 ||
                !parseUnsigned(parts[0], spec.seed))
                return fail("seed wants seed=<n>");
        } else {
            return fail("unknown impairment key '" + key + "'");
        }
    }

    std::string invalid;
    if (!spec.validate(&invalid))
        return fail(invalid);
    out = spec;
    return true;
}

ImpairmentInjector::ImpairmentInjector(const ImpairmentSpec &spec,
                                       double sample_rate_hz)
    : spec_(spec),
      reference_(spec.referenceLevel > 0.0 ? spec.referenceLevel : 1.0),
      sampleRateHz_(sample_rate_hz > 0.0 ? sample_rate_hz : 1.0),
      clipAbs_(std::isfinite(spec.clipLevel)
                   ? spec.clipLevel * reference_
                   : std::numeric_limits<double>::infinity()),
      noise_(std::isfinite(spec.snrDb)
                 ? reference_ * std::pow(10.0, -spec.snrDb / 20.0)
                 : 0.0,
             derivedSeed(spec.seed, 1)),
      impulseRng_(derivedSeed(spec.seed, 2)),
      dropoutRng_(derivedSeed(spec.seed, 3))
{
    uint64_t phase_state = spec.seed ^ 0x706861736573ull;
    driftPhase_ = kTwoPi * toUnit(splitMix64(phase_state));
    humPhase_ = kTwoPi * toUnit(splitMix64(phase_state));
    stats_.referenceLevel = reference_;
}

Sample
ImpairmentInjector::push(Sample x)
{
    double v = x;
    const double t = static_cast<double>(index_) / sampleRateHz_;

    if (spec_.gainDriftFraction > 0.0)
        v *= 1.0 + spec_.gainDriftFraction *
                       std::sin(kTwoPi * t /
                                    spec_.gainDriftPeriodSeconds +
                                driftPhase_);
    if (spec_.humHz > 0.0 && spec_.humDepth > 0.0)
        v += spec_.humDepth * reference_ *
             std::sin(kTwoPi * spec_.humHz * t + humPhase_);
    if (std::isfinite(spec_.snrDb))
        v += noise_.real();
    if (spec_.impulseRate > 0.0 &&
        impulseRng_.chance(spec_.impulseRate)) {
        ++stats_.impulses;
        v += (impulseRng_.chance(0.5) ? 1.0 : -1.0) *
             spec_.impulseAmplitude * reference_;
    }
    if (dropoutRemaining_ > 0) {
        --dropoutRemaining_;
        ++stats_.dropoutSamples;
        v = spec_.dropoutHold ? lastOut_ : 0.0;
    } else if (spec_.dropoutRate > 0.0 &&
               dropoutRng_.chance(spec_.dropoutRate)) {
        dropoutRemaining_ = spec_.dropoutLenSamples - 1;
        ++stats_.dropoutSamples;
        v = spec_.dropoutHold ? lastOut_ : 0.0;
    }
    if (v > clipAbs_) {
        v = clipAbs_;
        ++stats_.clippedSamples;
    }
    if (v < 0.0)
        v = 0.0;

    ++index_;
    ++stats_.samples;
    lastOut_ = static_cast<Sample>(v);
    return lastOut_;
}

void
applyImpairments(TimeSeries &series, const ImpairmentSpec &spec,
                 ImpairmentStats *stats)
{
    EMPROF_OBS_STAGE("dsp.impair");
    ImpairmentSpec effective = spec;
    if (effective.referenceLevel <= 0.0 && !series.samples.empty()) {
        // RMS in push order: deterministic, and the natural "signal
        // power" reference for the SNR-dB sweep.
        double sum_sq = 0.0;
        for (Sample s : series.samples)
            sum_sq += static_cast<double>(s) * static_cast<double>(s);
        const double rms = std::sqrt(
            sum_sq / static_cast<double>(series.samples.size()));
        effective.referenceLevel = rms > 0.0 ? rms : 1.0;
    }

    ImpairmentInjector injector(effective, series.sampleRateHz);
    for (Sample &s : series.samples)
        s = injector.push(s);
    countApply(injector.stats());
    if (stats != nullptr)
        *stats = injector.stats();
}

} // namespace emprof::dsp
