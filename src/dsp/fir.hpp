/**
 * @file
 * FIR filter design and streaming (decimating) FIR filters.
 *
 * The receiver model selects its measurement bandwidth by low-pass
 * filtering the complex-baseband emanation and decimating to a sample
 * rate equal to that bandwidth.  Because the decimation factors are
 * large (a 1 GHz-cycle-rate signal decimated to 20-160 MHz), the
 * decimating filter only evaluates the dot product at output instants
 * (polyphase evaluation), never at every input sample.
 */

#ifndef EMPROF_DSP_FIR_HPP
#define EMPROF_DSP_FIR_HPP

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace emprof::dsp {

/**
 * Design a linear-phase low-pass FIR via the windowed-sinc method.
 *
 * @param num_taps Filter length (forced odd internally for symmetry).
 * @param cutoff Normalised cutoff frequency in cycles/sample, in
 *               (0, 0.5).  E.g. decimating by M uses cutoff ~ 0.45/M.
 * @param kind Window applied to the sinc prototype.
 * @return Unit-DC-gain tap vector.
 */
std::vector<double> designLowPass(std::size_t num_taps, double cutoff,
                                  WindowKind kind = WindowKind::Blackman);

/**
 * Streaming FIR filter over samples of type T (Sample or Complex).
 *
 * Push one input sample, receive one output sample (the usual
 * group-delay of (taps-1)/2 applies; callers that need alignment use
 * groupDelay()).
 */
template <typename T>
class FirFilter
{
  public:
    explicit FirFilter(std::vector<double> taps)
        : taps_(std::move(taps)), history_(taps_.size(), T{}), pos_(0)
    {}

    /** Push one sample and return the filtered output. */
    T
    push(T x)
    {
        history_[pos_] = x;
        pos_ = (pos_ + 1) % history_.size();

        // history_[pos_] is now the oldest sample; taps are symmetric so
        // iteration direction does not matter for linear-phase designs,
        // but we keep the canonical convolution orientation anyway.
        T acc{};
        std::size_t idx = pos_;
        for (std::size_t k = taps_.size(); k-- > 0;) {
            acc += history_[idx] * static_cast<float>(taps_[k]);
            idx = (idx + 1) % history_.size();
        }
        return acc;
    }

    /** Reset internal history to zero. */
    void
    reset()
    {
        std::fill(history_.begin(), history_.end(), T{});
        pos_ = 0;
    }

    /** Group delay in samples for linear-phase taps. */
    std::size_t groupDelay() const { return (taps_.size() - 1) / 2; }

    const std::vector<double> &taps() const { return taps_; }

  private:
    std::vector<double> taps_;
    std::vector<T> history_;
    std::size_t pos_;
};

/**
 * Streaming decimating FIR.
 *
 * Accepts input samples one at a time and emits one filtered output per
 * @c factor inputs.  The dot product is only evaluated at output
 * instants, making throughput independent of filter length times input
 * rate (it scales with taps * output rate).
 */
template <typename T>
class DecimatingFir
{
  public:
    /**
     * @param taps Low-pass taps (cutoff must suit the decimation).
     * @param factor Decimation factor M >= 1.
     */
    DecimatingFir(std::vector<double> taps, std::size_t factor)
        : taps_(std::move(taps)),
          ftaps_(taps_.begin(), taps_.end()),
          history_(taps_.size(), T{}),
          pos_(0),
          factor_(factor == 0 ? 1 : factor),
          phase_(0)
    {}

    /**
     * Push one input sample.
     *
     * @param x Input sample.
     * @param out Receives the output sample when one is produced.
     * @retval true An output sample was written to @p out.
     */
    bool
    push(T x, T &out)
    {
        history_[pos_] = x;
        if (++pos_ == history_.size())
            pos_ = 0;
        if (pushed_ < taps_.size())
            ++pushed_;
        if (++phase_ < factor_)
            return false;
        phase_ = 0;

        // Evaluate the dot product in two contiguous runs instead of
        // wrapping per tap: history_[pos_..end) is the oldest data,
        // history_[0..pos_) the newest.
        T acc{};
        const std::size_t n = history_.size();
        std::size_t k = n - 1;
        for (std::size_t idx = pos_; idx < n; ++idx, --k)
            acc += history_[idx] * ftaps_[k];
        for (std::size_t idx = 0; idx < pos_; ++idx, --k)
            acc += history_[idx] * ftaps_[k];
        out = acc;
        return true;
    }

    /** Reset filter state and decimation phase. */
    void
    reset()
    {
        std::fill(history_.begin(), history_.end(), T{});
        pos_ = 0;
        phase_ = 0;
        pushed_ = 0;
    }

    /**
     * True once the history is fully primed with real samples.
     * Outputs produced before this mix in the zero-filled history
     * (a start-up ramp) and should usually be discarded.
     */
    bool warm() const { return pushed_ >= taps_.size(); }

    std::size_t factor() const { return factor_; }
    std::size_t numTaps() const { return taps_.size(); }

  private:
    std::vector<double> taps_;
    std::vector<float> ftaps_;
    std::vector<T> history_;
    std::size_t pos_;
    std::size_t factor_;
    std::size_t phase_;
    std::size_t pushed_ = 0;
};

/** Convenience: filter a whole real series with zero-padding edges. */
TimeSeries filterSeries(const TimeSeries &in, const std::vector<double> &taps);

} // namespace emprof::dsp

#endif // EMPROF_DSP_FIR_HPP
