#include "dsp/noise.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace emprof::dsp {

AwgnSource::AwgnSource(double sigma, uint64_t seed)
    : sigma_(sigma), rng_(seed)
{}

double
AwgnSource::exactReal()
{
    if (has_cached_) {
        has_cached_ = false;
        return cached_ * sigma_;
    }
    // Box-Muller transform; avoid u1 == 0.
    double u1 = rng_.uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = rng_.uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta) * sigma_;
}

RandomWalk::RandomWalk(double start, double step, double lo, double hi,
                       uint64_t seed)
    : value_(start), step_(step), lo_(lo), hi_(hi), noise_(1.0, seed)
{}

double
RandomWalk::step()
{
    value_ = std::clamp(value_ + noise_.real() * step_, lo_, hi_);
    return value_;
}

} // namespace emprof::dsp
