/**
 * @file
 * Noise generation for the EM channel model.
 */

#ifndef EMPROF_DSP_NOISE_HPP
#define EMPROF_DSP_NOISE_HPP

#include <cstdint>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace emprof::dsp {

/**
 * Additive white Gaussian noise source.
 *
 * real() uses an Irwin-Hall approximation (sum of four uniform lanes
 * drawn from a single 64-bit RNG word): one RNG call per draw, tails
 * truncated at ~3.5 sigma — ideal for the per-cycle channel noise,
 * which dominates the synthesis cost.  exactReal() provides a true
 * Box-Muller draw where distribution quality matters more than speed.
 */
class AwgnSource
{
  public:
    /**
     * @param sigma Standard deviation per real dimension.
     * @param seed RNG seed.
     */
    explicit AwgnSource(double sigma, uint64_t seed = 0xA6Cull);

    /** One fast approximately-Gaussian draw (Irwin-Hall, n=4). */
    double
    real()
    {
        // Four independent 16-bit uniform lanes from one 64-bit word.
        const uint64_t w = rng_();
        const double sum =
            static_cast<double>((w & 0xffff) + ((w >> 16) & 0xffff) +
                                ((w >> 32) & 0xffff) + (w >> 48));
        // Each lane ~ U(0,1)*65536 with variance 65536^2/12; centre
        // and scale the sum (variance 4/12) to unit variance.
        constexpr double center = 2.0 * 65535.0;
        constexpr double inv_std = 1.0 / (37837.2276490056); // 65536*sqrt(1/3)
        return (sum - center) * inv_std * sigma_;
    }

    /** One exact Gaussian draw (Box-Muller). */
    double exactReal();

    /** One circular complex Gaussian draw (sigma per dimension). */
    Complex
    complex()
    {
        return {static_cast<float>(real()), static_cast<float>(real())};
    }

    double sigma() const { return sigma_; }
    void setSigma(double sigma) { sigma_ = sigma; }

  private:
    double sigma_;
    Rng rng_;
    bool has_cached_ = false;
    double cached_ = 0.0;
};

/**
 * Slow random-walk process, used for probe-coupling gain drift and
 * power-supply wander: a first-order low-pass-filtered Gaussian walk
 * clamped to [min, max].
 */
class RandomWalk
{
  public:
    /**
     * @param start Initial value.
     * @param step Per-update standard deviation.
     * @param lo Lower clamp.
     * @param hi Upper clamp.
     * @param seed RNG seed.
     */
    RandomWalk(double start, double step, double lo, double hi,
               uint64_t seed = 0x11A1Cull);

    /** Advance one step and return the new value. */
    double step();

    /** Current value. */
    double value() const { return value_; }

  private:
    double value_;
    double step_;
    double lo_;
    double hi_;
    AwgnSource noise_;
};

} // namespace emprof::dsp

#endif // EMPROF_DSP_NOISE_HPP
