/**
 * @file
 * Streaming windowed statistics: moving average, moving min/max, moving
 * variance.
 *
 * The moving min/max pair is the core of EMPROF's signal normalisation
 * (Sec. IV of the paper): the received magnitude is mapped to [0, 1]
 * between a moving minimum and a moving maximum so that probe-position
 * gain and supply-voltage drift cancel out.  Both extrema are maintained
 * with monotonic wedges, giving O(1) amortised cost per sample, which is
 * what makes real-time operation at SDR sample rates feasible.
 */

#ifndef EMPROF_DSP_MOVING_STATS_HPP
#define EMPROF_DSP_MOVING_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <deque>

#include "dsp/types.hpp"

namespace emprof::dsp {

/**
 * Kahan-compensated running sum.
 *
 * A plain double accumulator loses one ulp of the running total per
 * add/subtract pair; over the 1e8+ samples of a long capture the moving
 * mean visibly drifts away from the window's true mean.  Compensated
 * summation keeps the error bounded independently of stream length.
 */
class KahanSum
{
  public:
    void
    add(double x)
    {
        const double y = x - comp_;
        const double t = sum_ + y;
        comp_ = (t - sum_) - y;
        sum_ = t;
    }

    double value() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        comp_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

/** Streaming moving average over a fixed-length window. */
class MovingAverage
{
  public:
    explicit MovingAverage(std::size_t window);

    /** Push a sample; returns the average over the (possibly partially
     *  filled) window. */
    double push(double x);

    /** Current average without pushing. */
    double value() const;

    /** True once a full window of samples has been observed. */
    bool warm() const { return count_ >= window_; }

    void reset();

    std::size_t window() const { return window_; }

  private:
    std::size_t window_;
    std::deque<double> buf_;
    KahanSum sum_;
    uint64_t count_ = 0;
};

/**
 * Streaming moving minimum and maximum over a fixed-length window.
 *
 * Implemented with the standard monotonic-wedge technique: each wedge
 * stores (index, value) pairs whose values are monotone, so the front
 * is always the current extremum and every sample is pushed/popped at
 * most once.  The wedges live in fixed ring buffers (capacity =
 * window), not deques: this class sits on EMPROF's per-sample hot
 * path, where it must keep up with SDR sample rates.
 */
class MovingMinMax
{
  public:
    explicit MovingMinMax(std::size_t window);

    /** Push one sample. */
    void
    push(double x)
    {
        const uint64_t idx = count_++;
        const uint64_t oldest = (idx >= window_) ? idx - window_ + 1 : 0;

        // Evict entries that fell out of the window.
        if (minHead_ != minTail_ && minRing_[minHead_].index < oldest)
            bump(minHead_);
        if (maxHead_ != maxTail_ && maxRing_[maxHead_].index < oldest)
            bump(maxHead_);

        // Maintain monotonicity: the min wedge is non-decreasing, the
        // max wedge non-increasing.
        while (minHead_ != minTail_ &&
               minRing_[prev(minTail_)].value >= x) {
            minTail_ = prev(minTail_);
        }
        while (maxHead_ != maxTail_ &&
               maxRing_[prev(maxTail_)].value <= x) {
            maxTail_ = prev(maxTail_);
        }
        minRing_[minTail_] = {idx, x};
        bump(minTail_);
        maxRing_[maxTail_] = {idx, x};
        bump(maxTail_);
    }

    /** Minimum over the current window (requires >= 1 sample pushed). */
    double min() const { return minRing_[minHead_].value; }

    /** Maximum over the current window (requires >= 1 sample pushed). */
    double max() const { return maxRing_[maxHead_].value; }

    /** True once a full window of samples has been observed. */
    bool warm() const { return count_ >= window_; }

    /** Number of samples pushed so far. */
    uint64_t count() const { return count_; }

    void reset();

    std::size_t window() const { return window_; }

  private:
    struct Entry
    {
        uint64_t index;
        double value;
    };

    /** Advance a ring cursor. */
    void
    bump(std::size_t &cursor) const
    {
        if (++cursor == capacity_)
            cursor = 0;
    }

    /** Ring position before @p cursor. */
    std::size_t
    prev(std::size_t cursor) const
    {
        return cursor == 0 ? capacity_ - 1 : cursor - 1;
    }

    std::size_t window_;
    std::size_t capacity_; // window_ + 1 (one slot keeps head != tail)
    std::vector<Entry> minRing_;
    std::vector<Entry> maxRing_;
    std::size_t minHead_ = 0, minTail_ = 0;
    std::size_t maxHead_ = 0, maxTail_ = 0;
    uint64_t count_ = 0;
};

/**
 * Streaming moving variance over a fixed-length window.
 *
 * Sums are taken of pivot-shifted values (x - pivot) with Kahan
 * compensation, and the pivot is re-centred on the window mean every
 * `window` pushes (an amortised O(1) rebuild from the buffer).  The
 * shift defeats the catastrophic cancellation of the naive
 * sum/sum-of-squares form when the signal sits on a large offset
 * (variance 0.25 at level 1e8 needs ~17 more digits than a double
 * carries without it), and the compensation stops the long-stream
 * drift of the running subtract-the-oldest update.
 */
class MovingVariance
{
  public:
    explicit MovingVariance(std::size_t window);

    /** Push a sample; returns the population variance of the window. */
    double push(double x);

    double mean() const;
    double variance() const;
    bool warm() const { return count_ >= window_; }
    void reset();

  private:
    /** Re-centre the pivot on the current mean and rebuild the sums. */
    void repivot();

    std::size_t window_;
    std::deque<double> buf_;
    double pivot_ = 0.0;
    KahanSum shifted_;    // sum of (x - pivot)
    KahanSum shiftedSq_;  // sum of (x - pivot)^2
    uint64_t count_ = 0;
};

/** Batch helper: moving average of a whole series (same length out). */
TimeSeries movingAverage(const TimeSeries &in, std::size_t window);

} // namespace emprof::dsp

#endif // EMPROF_DSP_MOVING_STATS_HPP
