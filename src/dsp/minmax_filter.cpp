#include "dsp/minmax_filter.hpp"

namespace emprof::dsp {

template class MinMaxFilter<float>;
template class MinMaxFilter<double>;

} // namespace emprof::dsp
