#include "dsp/moving_stats.hpp"

#include <algorithm>
#include <cassert>

namespace emprof::dsp {

MovingAverage::MovingAverage(std::size_t window)
    : window_(window == 0 ? 1 : window)
{}

double
MovingAverage::push(double x)
{
    buf_.push_back(x);
    sum_.add(x);
    ++count_;
    if (buf_.size() > window_) {
        sum_.add(-buf_.front());
        buf_.pop_front();
    }
    return value();
}

double
MovingAverage::value() const
{
    if (buf_.empty())
        return 0.0;
    return sum_.value() / static_cast<double>(buf_.size());
}

void
MovingAverage::reset()
{
    buf_.clear();
    sum_.reset();
    count_ = 0;
}

MovingMinMax::MovingMinMax(std::size_t window)
    : window_(window == 0 ? 1 : window),
      capacity_(window_ + 1),
      minRing_(capacity_),
      maxRing_(capacity_)
{}

void
MovingMinMax::reset()
{
    minHead_ = minTail_ = 0;
    maxHead_ = maxTail_ = 0;
    count_ = 0;
}

MovingVariance::MovingVariance(std::size_t window)
    : window_(window == 0 ? 1 : window)
{}

double
MovingVariance::push(double x)
{
    if (buf_.empty() && count_ == 0)
        pivot_ = x;
    buf_.push_back(x);
    const double d = x - pivot_;
    shifted_.add(d);
    shiftedSq_.add(d * d);
    ++count_;
    if (buf_.size() > window_) {
        const double od = buf_.front() - pivot_;
        shifted_.add(-od);
        shiftedSq_.add(-(od * od));
        buf_.pop_front();
    }
    // Re-centring every window-full of pushes keeps the pivot near the
    // window mean even when the signal wanders far from its first
    // sample, at amortised O(1).
    if (count_ % window_ == 0)
        repivot();
    return variance();
}

void
MovingVariance::repivot()
{
    const double new_pivot = mean();
    shifted_.reset();
    shiftedSq_.reset();
    for (double x : buf_) {
        const double d = x - new_pivot;
        shifted_.add(d);
        shiftedSq_.add(d * d);
    }
    pivot_ = new_pivot;
}

double
MovingVariance::mean() const
{
    if (buf_.empty())
        return 0.0;
    return pivot_ +
           shifted_.value() / static_cast<double>(buf_.size());
}

double
MovingVariance::variance() const
{
    if (buf_.empty())
        return 0.0;
    const double n = static_cast<double>(buf_.size());
    const double m = shifted_.value() / n;
    // Guard against tiny negative values from cancellation.
    return std::max(0.0, shiftedSq_.value() / n - m * m);
}

void
MovingVariance::reset()
{
    buf_.clear();
    pivot_ = 0.0;
    shifted_.reset();
    shiftedSq_.reset();
    count_ = 0;
}

TimeSeries
movingAverage(const TimeSeries &in, std::size_t window)
{
    TimeSeries out;
    out.sampleRateHz = in.sampleRateHz;
    out.samples.reserve(in.samples.size());
    MovingAverage avg(window);
    for (Sample s : in.samples)
        out.samples.push_back(static_cast<Sample>(avg.push(s)));
    return out;
}

} // namespace emprof::dsp
