#include "dsp/moving_stats.hpp"

#include <algorithm>
#include <cassert>

namespace emprof::dsp {

MovingAverage::MovingAverage(std::size_t window)
    : window_(window == 0 ? 1 : window)
{}

double
MovingAverage::push(double x)
{
    buf_.push_back(x);
    sum_ += x;
    ++count_;
    if (buf_.size() > window_) {
        sum_ -= buf_.front();
        buf_.pop_front();
    }
    return value();
}

double
MovingAverage::value() const
{
    if (buf_.empty())
        return 0.0;
    return sum_ / static_cast<double>(buf_.size());
}

void
MovingAverage::reset()
{
    buf_.clear();
    sum_ = 0.0;
    count_ = 0;
}

MovingMinMax::MovingMinMax(std::size_t window)
    : window_(window == 0 ? 1 : window),
      capacity_(window_ + 1),
      minRing_(capacity_),
      maxRing_(capacity_)
{}

void
MovingMinMax::reset()
{
    minHead_ = minTail_ = 0;
    maxHead_ = maxTail_ = 0;
    count_ = 0;
}

MovingVariance::MovingVariance(std::size_t window)
    : window_(window == 0 ? 1 : window)
{}

double
MovingVariance::push(double x)
{
    buf_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    ++count_;
    if (buf_.size() > window_) {
        const double old = buf_.front();
        sum_ -= old;
        sum_sq_ -= old * old;
        buf_.pop_front();
    }
    return variance();
}

double
MovingVariance::mean() const
{
    if (buf_.empty())
        return 0.0;
    return sum_ / static_cast<double>(buf_.size());
}

double
MovingVariance::variance() const
{
    if (buf_.empty())
        return 0.0;
    const double n = static_cast<double>(buf_.size());
    const double m = sum_ / n;
    // Guard against tiny negative values from cancellation.
    return std::max(0.0, sum_sq_ / n - m * m);
}

void
MovingVariance::reset()
{
    buf_.clear();
    sum_ = 0.0;
    sum_sq_ = 0.0;
    count_ = 0;
}

TimeSeries
movingAverage(const TimeSeries &in, std::size_t window)
{
    TimeSeries out;
    out.sampleRateHz = in.sampleRateHz;
    out.samples.reserve(in.samples.size());
    MovingAverage avg(window);
    for (Sample s : in.samples)
        out.samples.push_back(static_cast<Sample>(avg.push(s)));
    return out;
}

} // namespace emprof::dsp
