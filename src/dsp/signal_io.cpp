#include "dsp/signal_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace emprof::dsp {

namespace {

using common::io::CheckedFile;
using common::io::IoError;

constexpr char kMagic[4] = {'E', 'M', 'S', 'G'};
constexpr uint32_t kVersion = 1;

struct FileHeader
{
    char magic[4];
    uint32_t version;
    uint32_t kind;
    uint32_t reserved;
    double sampleRateHz;
    uint64_t sampleCount; // floats in the payload
};

static_assert(sizeof(FileHeader) == 32, "header layout is the format");

bool
reportFileError(const CheckedFile &file, IoError *error)
{
    if (error != nullptr)
        *error = file.error();
    return false;
}

bool
reportFormat(const std::string &path, const std::string &what,
             IoError *error)
{
    if (error != nullptr)
        *error = common::io::formatError(path, what);
    return false;
}

bool
writePayload(const std::string &path, SignalKind kind,
             double sample_rate_hz, const float *data, uint64_t count,
             IoError *error)
{
    CheckedFile file;
    if (!file.open(path, CheckedFile::Mode::WriteTruncate))
        return reportFileError(file, error);

    FileHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kVersion;
    header.kind = static_cast<uint32_t>(kind);
    header.sampleRateHz = sample_rate_hz;
    header.sampleCount = count;

    const bool ok =
        file.writeAll(&header, sizeof(header), "emsig header") &&
        (count == 0 ||
         file.writeAll(data, count * sizeof(float), "emsig payload")) &&
        file.syncToDisk("emsig fsync") && file.close();
    if (!ok)
        return reportFileError(file, error);
    return true;
}

} // namespace

bool
saveSignal(const std::string &path, const TimeSeries &series,
           IoError *error)
{
    return writePayload(path, SignalKind::Magnitude, series.sampleRateHz,
                        series.samples.data(), series.samples.size(),
                        error);
}

bool
saveSignal(const std::string &path, const ComplexSeries &series,
           IoError *error)
{
    // std::complex<float> is layout-compatible with float[2].
    return writePayload(
        path, SignalKind::Iq, series.sampleRateHz,
        reinterpret_cast<const float *>(series.samples.data()),
        series.samples.size() * 2, error);
}

bool
loadSignal(const std::string &path, TimeSeries &out, IoError *error)
{
    CheckedFile file;
    if (!file.open(path, CheckedFile::Mode::Read))
        return reportFileError(file, error);

    uint64_t file_size = 0;
    if (!file.size(file_size, "emsig stat"))
        return reportFileError(file, error);
    if (file_size < sizeof(FileHeader))
        return reportFormat(path, "shorter than an .emsig header",
                            error);

    FileHeader header{};
    if (!file.readAll(&header, sizeof(header), "emsig header"))
        return reportFileError(file, error);
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0 ||
        header.version != kVersion)
        return reportFormat(path, "bad magic or version", error);

    // The header's count must agree with the bytes actually present;
    // checking before the allocation also stops a hostile count from
    // requesting terabytes.
    if (header.sampleCount !=
        (file_size - sizeof(FileHeader)) / sizeof(float) ||
        header.sampleCount * sizeof(float) !=
            file_size - sizeof(FileHeader))
        return reportFormat(
            path, "payload size disagrees with header (truncated?)",
            error);

    const bool is_magnitude =
        header.kind == static_cast<uint32_t>(SignalKind::Magnitude);
    const bool is_iq =
        header.kind == static_cast<uint32_t>(SignalKind::Iq);
    if (!is_magnitude && !is_iq)
        return reportFormat(path, "unknown payload kind", error);
    if (is_iq && header.sampleCount % 2 != 0)
        return reportFormat(path, "odd float count in an I/Q payload",
                            error);

    std::vector<float> payload(
        static_cast<std::size_t>(header.sampleCount));
    if (!payload.empty() &&
        !file.readAll(payload.data(), payload.size() * sizeof(float),
                      "emsig payload"))
        return reportFileError(file, error);

    out.sampleRateHz = header.sampleRateHz;
    out.samples.clear();
    if (is_magnitude) {
        out.samples = std::move(payload);
        return true;
    }
    out.samples.reserve(payload.size() / 2);
    for (std::size_t i = 0; i + 1 < payload.size(); i += 2)
        out.samples.push_back(std::hypot(payload[i], payload[i + 1]));
    return true;
}

SignalFileType
sniffSignalFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return SignalFileType::Unknown;
    char magic[4] = {};
    const bool got =
        std::fread(magic, 1, sizeof(magic), file) == sizeof(magic);
    std::fclose(file);
    if (!got)
        return SignalFileType::Unknown;
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
        return SignalFileType::Emsig;
    if (std::memcmp(magic, "EMCP", 4) == 0)
        return SignalFileType::Emcap;
    return SignalFileType::Unknown;
}

bool
loadRawF32(const std::string &path, double sample_rate_hz, bool iq,
           TimeSeries &out, IoError *error)
{
    CheckedFile file;
    if (!file.open(path, CheckedFile::Mode::Read))
        return reportFileError(file, error);

    // A raw capture is an exact array of f32 (or f32 I/Q pairs); a
    // remainder means truncation or a non-raw file.  Refuse rather
    // than analyse a silently-mangled signal.
    uint64_t bytes = 0;
    if (!file.size(bytes, "raw stat"))
        return reportFileError(file, error);
    const uint64_t sample_bytes =
        iq ? 2 * sizeof(float) : sizeof(float);
    if (bytes % sample_bytes != 0)
        return reportFormat(path,
                            "byte count is not a multiple of the "
                            "sample size (truncated or not raw f32)",
                            error);

    out.sampleRateHz = sample_rate_hz;
    out.samples.clear();
    out.samples.reserve(static_cast<std::size_t>(bytes / sample_bytes));

    float buf[4096];
    uint64_t remaining = bytes / sizeof(float);
    while (remaining > 0) {
        const std::size_t got = static_cast<std::size_t>(
            std::min<uint64_t>(remaining, 4096));
        if (!file.readAll(buf, got * sizeof(float), "raw payload"))
            return reportFileError(file, error);
        remaining -= got;
        if (!iq) {
            out.samples.insert(out.samples.end(), buf, buf + got);
            continue;
        }
        // got is even: 4096 is even and the total float count is even.
        for (std::size_t i = 0; i + 1 < got; i += 2)
            out.samples.push_back(std::hypot(buf[i], buf[i + 1]));
    }
    return true;
}

bool
saveCsv(const std::string &path, const TimeSeries &series,
        IoError *error)
{
    CheckedFile file;
    if (!file.open(path, CheckedFile::Mode::WriteTruncate))
        return reportFileError(file, error);

    std::string block = "time_s,magnitude\n";
    char line[64];
    for (std::size_t i = 0; i < series.samples.size(); ++i) {
        std::snprintf(line, sizeof(line), "%.9f,%.6f\n",
                      static_cast<double>(i) / series.sampleRateHz,
                      static_cast<double>(series.samples[i]));
        block += line;
        if (block.size() >= 64 * 1024) {
            if (!file.writeAll(block.data(), block.size(), "csv rows"))
                return reportFileError(file, error);
            block.clear();
        }
    }
    const bool ok = (block.empty() ||
                     file.writeAll(block.data(), block.size(),
                                   "csv rows")) &&
                    file.close();
    if (!ok)
        return reportFileError(file, error);
    return true;
}

} // namespace emprof::dsp
