#include "dsp/signal_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

namespace emprof::dsp {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'S', 'G'};
constexpr uint32_t kVersion = 1;

struct FileHeader
{
    char magic[4];
    uint32_t version;
    uint32_t kind;
    uint32_t reserved;
    double sampleRateHz;
    uint64_t sampleCount; // floats in the payload
};

static_assert(sizeof(FileHeader) == 32, "header layout is the format");

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using File = std::unique_ptr<std::FILE, FileCloser>;

bool
writePayload(const std::string &path, SignalKind kind,
             double sample_rate_hz, const float *data, uint64_t count)
{
    File file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return false;

    FileHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kVersion;
    header.kind = static_cast<uint32_t>(kind);
    header.sampleRateHz = sample_rate_hz;
    header.sampleCount = count;

    if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1)
        return false;
    return count == 0 ||
           std::fwrite(data, sizeof(float), count, file.get()) == count;
}

} // namespace

bool
saveSignal(const std::string &path, const TimeSeries &series)
{
    return writePayload(path, SignalKind::Magnitude, series.sampleRateHz,
                        series.samples.data(), series.samples.size());
}

bool
saveSignal(const std::string &path, const ComplexSeries &series)
{
    // std::complex<float> is layout-compatible with float[2].
    return writePayload(
        path, SignalKind::Iq, series.sampleRateHz,
        reinterpret_cast<const float *>(series.samples.data()),
        series.samples.size() * 2);
}

bool
loadSignal(const std::string &path, TimeSeries &out)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return false;

    FileHeader header{};
    if (std::fread(&header, sizeof(header), 1, file.get()) != 1)
        return false;
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0 ||
        header.version != kVersion) {
        return false;
    }

    std::vector<float> payload(header.sampleCount);
    if (std::fread(payload.data(), sizeof(float), payload.size(),
                   file.get()) != payload.size()) {
        return false;
    }

    out.sampleRateHz = header.sampleRateHz;
    out.samples.clear();
    if (header.kind == static_cast<uint32_t>(SignalKind::Magnitude)) {
        out.samples = std::move(payload);
        return true;
    }
    if (header.kind == static_cast<uint32_t>(SignalKind::Iq)) {
        out.samples.reserve(payload.size() / 2);
        for (std::size_t i = 0; i + 1 < payload.size(); i += 2)
            out.samples.push_back(
                std::hypot(payload[i], payload[i + 1]));
        return true;
    }
    return false;
}

SignalFileType
sniffSignalFile(const std::string &path)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return SignalFileType::Unknown;
    char magic[4] = {};
    if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic))
        return SignalFileType::Unknown;
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
        return SignalFileType::Emsig;
    if (std::memcmp(magic, "EMCP", 4) == 0)
        return SignalFileType::Emcap;
    return SignalFileType::Unknown;
}

bool
loadRawF32(const std::string &path, double sample_rate_hz, bool iq,
           TimeSeries &out)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return false;

    // A raw capture is an exact array of f32 (or f32 I/Q pairs); a
    // remainder means truncation or a non-raw file.  Refuse rather
    // than analyse a silently-mangled signal.
    if (std::fseek(file.get(), 0, SEEK_END) != 0)
        return false;
    const long bytes = std::ftell(file.get());
    if (bytes < 0 ||
        bytes % static_cast<long>(iq ? 2 * sizeof(float)
                                     : sizeof(float)) != 0)
        return false;
    std::rewind(file.get());

    out.sampleRateHz = sample_rate_hz;
    out.samples.clear();
    out.samples.reserve(static_cast<std::size_t>(bytes) /
                        (iq ? 2 * sizeof(float) : sizeof(float)));

    float buf[4096];
    float pending_i = 0.0f;
    bool have_pending = false;
    for (;;) {
        const std::size_t got =
            std::fread(buf, sizeof(float), 4096, file.get());
        if (got == 0)
            break;
        if (!iq) {
            out.samples.insert(out.samples.end(), buf, buf + got);
            continue;
        }
        std::size_t i = 0;
        if (have_pending) {
            out.samples.push_back(std::hypot(pending_i, buf[0]));
            have_pending = false;
            i = 1;
        }
        for (; i + 1 < got; i += 2)
            out.samples.push_back(std::hypot(buf[i], buf[i + 1]));
        if (i < got) {
            pending_i = buf[i];
            have_pending = true;
        }
    }
    return true;
}

bool
saveCsv(const std::string &path, const TimeSeries &series)
{
    File file(std::fopen(path.c_str(), "w"));
    if (!file)
        return false;
    std::fprintf(file.get(), "time_s,magnitude\n");
    for (std::size_t i = 0; i < series.samples.size(); ++i) {
        std::fprintf(file.get(), "%.9f,%.6f\n",
                     static_cast<double>(i) / series.sampleRateHz,
                     static_cast<double>(series.samples[i]));
    }
    return true;
}

} // namespace emprof::dsp
