/**
 * @file
 * Fundamental sample and time-series types shared by the whole stack.
 *
 * Signal samples are single-precision: the data volumes are large (one
 * sample per core cycle before decimation) and the dynamic range of an
 * AM envelope does not need doubles.  Accumulators inside algorithms use
 * double precision throughout.
 */

#ifndef EMPROF_DSP_TYPES_HPP
#define EMPROF_DSP_TYPES_HPP

#include <complex>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace emprof::dsp {

/** Real-valued signal sample. */
using Sample = float;

/** Complex baseband (IQ) sample. */
using Complex = std::complex<float>;

/** Streaming sink for real samples. */
using SampleSink = std::function<void(Sample)>;

/** Streaming sink for complex samples. */
using ComplexSink = std::function<void(Complex)>;

/**
 * A real-valued time series with an attached sample rate.
 *
 * The sample rate is carried with the data so downstream consumers
 * (EMPROF converts dip durations into nanoseconds and processor cycles)
 * never have to guess which stage of the decimation chain produced it.
 */
struct TimeSeries
{
    /** Samples per second. */
    double sampleRateHz = 0.0;

    /** Sample data, index 0 is time 0. */
    std::vector<Sample> samples;

    /** Duration of one sample period in seconds. */
    double samplePeriod() const { return 1.0 / sampleRateHz; }

    /** Total duration in seconds. */
    double
    duration() const
    {
        return static_cast<double>(samples.size()) / sampleRateHz;
    }

    std::size_t size() const { return samples.size(); }
    bool empty() const { return samples.empty(); }
};

/** A complex-valued (IQ) time series with an attached sample rate. */
struct ComplexSeries
{
    /** Samples per second. */
    double sampleRateHz = 0.0;

    /** Sample data, index 0 is time 0. */
    std::vector<Complex> samples;

    std::size_t size() const { return samples.size(); }
    bool empty() const { return samples.empty(); }

    /** Duration of one sample period in seconds. */
    double samplePeriod() const { return 1.0 / sampleRateHz; }

    /** Magnitude (envelope) of the series as a real series. */
    TimeSeries
    magnitude() const
    {
        TimeSeries out;
        out.sampleRateHz = sampleRateHz;
        out.samples.reserve(samples.size());
        for (const auto &s : samples)
            out.samples.push_back(std::abs(s));
        return out;
    }
};

} // namespace emprof::dsp

#endif // EMPROF_DSP_TYPES_HPP
