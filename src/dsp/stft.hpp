/**
 * @file
 * Short-time Fourier transform and spectrogram container.
 *
 * Used by the attribution pipeline (Fig. 14 / Table V): distinct loops
 * in the profiled program have distinct activity periodicities, so
 * their short-term spectra differ, and region boundaries appear as
 * jumps in the frame-to-frame spectral distance.
 */

#ifndef EMPROF_DSP_STFT_HPP
#define EMPROF_DSP_STFT_HPP

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace emprof::dsp {

/** STFT configuration. */
struct StftConfig
{
    /** Samples per analysis frame. */
    std::size_t frameSize = 1024;

    /** Hop between consecutive frames (<= frameSize). */
    std::size_t hop = 512;

    /** FFT size; 0 means next power of two >= frameSize. */
    std::size_t fftSize = 0;

    /** Analysis window. */
    WindowKind window = WindowKind::Hann;
};

/**
 * Magnitude spectrogram: frames x bins matrix stored row-major.
 */
struct Spectrogram
{
    std::size_t numFrames = 0;
    std::size_t numBins = 0;

    /** Input sample rate (Hz). */
    double sampleRateHz = 0.0;

    /** Hop between frames, in input samples. */
    std::size_t hop = 0;

    /** Row-major magnitudes: data[frame * numBins + bin]. */
    std::vector<double> data;

    /** Magnitude at (frame, bin). */
    double
    at(std::size_t frame, std::size_t bin) const
    {
        return data[frame * numBins + bin];
    }

    /** One frame's spectrum as a copy. */
    std::vector<double> frame(std::size_t index) const;

    /** Centre time of a frame in seconds. */
    double frameTime(std::size_t index) const;

    /** Frequency of a bin in Hz. */
    double binFrequency(std::size_t bin) const;
};

/** Compute the magnitude spectrogram of a real series. */
Spectrogram stft(const TimeSeries &in, const StftConfig &config);

/**
 * Cosine distance between two spectra, in [0, 2].
 *
 * 0 means identical shape; used for region-change detection.
 */
double spectralDistance(const std::vector<double> &a,
                        const std::vector<double> &b);

} // namespace emprof::dsp

#endif // EMPROF_DSP_STFT_HPP
