#include "dsp/stft.hpp"

#include <cassert>
#include <cmath>

#include "dsp/fft.hpp"

namespace emprof::dsp {

std::vector<double>
Spectrogram::frame(std::size_t index) const
{
    assert(index < numFrames);
    return {data.begin() + static_cast<std::ptrdiff_t>(index * numBins),
            data.begin() + static_cast<std::ptrdiff_t>((index + 1) * numBins)};
}

double
Spectrogram::frameTime(std::size_t index) const
{
    // Centre of the frame: frames are hop-spaced, frameSize-long; the
    // hop and numBins fully determine the layout given the config used,
    // and the centre offset is close enough to hop/2 for display.
    return (static_cast<double>(index * hop) + static_cast<double>(hop) / 2) /
           sampleRateHz;
}

double
Spectrogram::binFrequency(std::size_t bin) const
{
    const double fft_size = static_cast<double>(2 * (numBins - 1));
    return sampleRateHz * static_cast<double>(bin) / fft_size;
}

Spectrogram
stft(const TimeSeries &in, const StftConfig &config)
{
    Spectrogram out;
    out.sampleRateHz = in.sampleRateHz;
    out.hop = config.hop == 0 ? config.frameSize : config.hop;

    const std::size_t frame_size = config.frameSize;
    std::size_t fft_size = config.fftSize;
    if (fft_size == 0)
        fft_size = nextPowerOfTwo(frame_size);
    assert(isPowerOfTwo(fft_size) && fft_size >= frame_size);

    out.numBins = fft_size / 2 + 1;

    if (in.samples.size() < frame_size)
        return out;

    const auto window = makeWindow(config.window, frame_size);
    const std::size_t num_frames =
        (in.samples.size() - frame_size) / out.hop + 1;
    out.numFrames = num_frames;
    out.data.resize(num_frames * out.numBins);

    std::vector<double> buf(frame_size);
    for (std::size_t f = 0; f < num_frames; ++f) {
        const std::size_t start = f * out.hop;
        for (std::size_t i = 0; i < frame_size; ++i)
            buf[i] = static_cast<double>(in.samples[start + i]) * window[i];
        const auto mags = magnitudeSpectrum(buf, fft_size);
        std::copy(mags.begin(), mags.end(),
                  out.data.begin() +
                      static_cast<std::ptrdiff_t>(f * out.numBins));
    }
    return out;
}

double
spectralDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double dot = 0.0, na = 0.0, nb = 0.0;
    // Skip DC (bin 0): overall level is handled by normalisation
    // elsewhere; shape is what distinguishes code regions.
    for (std::size_t i = 1; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if (na <= 0.0 || nb <= 0.0)
        return (na == nb) ? 0.0 : 2.0;
    return 1.0 - dot / std::sqrt(na * nb);
}

} // namespace emprof::dsp
