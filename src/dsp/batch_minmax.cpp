/**
 * @file
 * Scalar instantiation of the batch sliding-min/max kernel plus the
 * runtime SIMD dispatch shared by every batch entry point.
 */

#include "dsp/batch_minmax.hpp"

#include <cstdlib>
#include <cstring>

#include "dsp/batch_minmax_impl.hpp"

namespace emprof::dsp {

namespace detail {

#if !defined(EMPROF_DISABLE_SIMD)
// Defined in batch_minmax_avx2.cpp (compiled with -mavx2).
void slidingMinMaxBatchAvx2(const float *x, std::size_t n, std::size_t window,
                            float *outMin, float *outMax);
void slidingMinMaxBatchAvx2(const double *x, std::size_t n,
                            std::size_t window, double *outMin,
                            double *outMax);
#endif

static bool
cpuHasAvx2()
{
#if !defined(EMPROF_DISABLE_SIMD) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

static SimdVariant
resolveVariant()
{
    if (!cpuHasAvx2())
        return SimdVariant::Scalar;
    if (const char *env = std::getenv("EMPROF_SIMD")) {
        if (std::strcmp(env, "scalar") == 0)
            return SimdVariant::Scalar;
    }
    return SimdVariant::Avx2;
}

} // namespace detail

const char *
simdVariantName(SimdVariant v)
{
    return v == SimdVariant::Avx2 ? "avx2" : "scalar";
}

bool
avx2Available()
{
    static const bool available = detail::cpuHasAvx2();
    return available;
}

SimdVariant
activeSimdVariant()
{
    static const SimdVariant v = detail::resolveVariant();
    return v;
}

void
slidingMinMaxBatchVariant(SimdVariant v, const float *x, std::size_t n,
                          std::size_t window, float *outMin, float *outMax)
{
#if !defined(EMPROF_DISABLE_SIMD)
    if (v == SimdVariant::Avx2 && avx2Available()) {
        detail::slidingMinMaxBatchAvx2(x, n, window, outMin, outMax);
        return;
    }
#endif
    (void)v;
    detail::slidingMinMaxBatchImpl<lanes::Scalar>(x, n, window, outMin,
                                                  outMax);
}

void
slidingMinMaxBatchVariant(SimdVariant v, const double *x, std::size_t n,
                          std::size_t window, double *outMin, double *outMax)
{
#if !defined(EMPROF_DISABLE_SIMD)
    if (v == SimdVariant::Avx2 && avx2Available()) {
        detail::slidingMinMaxBatchAvx2(x, n, window, outMin, outMax);
        return;
    }
#endif
    (void)v;
    detail::slidingMinMaxBatchImpl<lanes::Scalar>(x, n, window, outMin,
                                                  outMax);
}

void
slidingMinMaxBatch(const float *x, std::size_t n, std::size_t window,
                   float *outMin, float *outMax)
{
    slidingMinMaxBatchVariant(activeSimdVariant(), x, n, window, outMin,
                              outMax);
}

void
slidingMinMaxBatch(const double *x, std::size_t n, std::size_t window,
                   double *outMin, double *outMax)
{
    slidingMinMaxBatchVariant(activeSimdVariant(), x, n, window, outMin,
                              outMax);
}

} // namespace emprof::dsp
