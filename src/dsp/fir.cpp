#include "dsp/fir.hpp"

#include <cmath>
#include <numbers>

namespace emprof::dsp {

std::vector<double>
designLowPass(std::size_t num_taps, double cutoff, WindowKind kind)
{
    if (num_taps < 3)
        num_taps = 3;
    if (num_taps % 2 == 0)
        ++num_taps; // force odd length: symmetric, integral group delay

    const auto window = makeWindow(kind, num_taps);
    std::vector<double> taps(num_taps);
    const double mid = static_cast<double>(num_taps - 1) / 2.0;
    constexpr double two_pi = 2.0 * std::numbers::pi;

    double sum = 0.0;
    for (std::size_t n = 0; n < num_taps; ++n) {
        const double t = static_cast<double>(n) - mid;
        double sinc;
        if (std::abs(t) < 1e-12) {
            sinc = 2.0 * cutoff;
        } else {
            sinc = std::sin(two_pi * cutoff * t) / (std::numbers::pi * t);
        }
        taps[n] = sinc * window[n];
        sum += taps[n];
    }

    // Normalise for unit gain at DC so the envelope level is preserved
    // across bandwidth settings (Fig. 12 compares absolute dip depths).
    if (sum != 0.0) {
        for (auto &t : taps)
            t /= sum;
    }
    return taps;
}

TimeSeries
filterSeries(const TimeSeries &in, const std::vector<double> &taps)
{
    TimeSeries out;
    out.sampleRateHz = in.sampleRateHz;
    out.samples.resize(in.samples.size(), 0.0f);

    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(in.samples.size());
    const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(taps.size());
    const std::ptrdiff_t half = (m - 1) / 2;

    for (std::ptrdiff_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::ptrdiff_t k = 0; k < m; ++k) {
            const std::ptrdiff_t j = i + half - k;
            if (j >= 0 && j < n)
                acc += taps[static_cast<std::size_t>(k)] *
                       in.samples[static_cast<std::size_t>(j)];
        }
        out.samples[static_cast<std::size_t>(i)] = static_cast<Sample>(acc);
    }
    return out;
}

} // namespace emprof::dsp
