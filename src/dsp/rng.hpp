/**
 * @file
 * Small, fast, deterministic random number generators.
 *
 * Everything in this repository that needs randomness (cache replacement,
 * workload address streams, channel noise) takes an explicit seed so whole
 * experiments are reproducible run-to-run.  We use xoshiro256** rather
 * than std::mt19937 because the simulator draws a random number on every
 * replacement decision and every synthetic-workload memory access.
 */

#ifndef EMPROF_DSP_RNG_HPP
#define EMPROF_DSP_RNG_HPP

#include <cstdint>

namespace emprof::dsp {

/** SplitMix64: used to expand a single seed into xoshiro state. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** pseudo random generator.
 *
 * Satisfies (the useful subset of) UniformRandomBitGenerator so it can be
 * plugged into std::*_distribution when convenient.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x00edf00d5eedull)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit draw. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for our bounds.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>((*this)()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

    /** True with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace emprof::dsp

#endif // EMPROF_DSP_RNG_HPP
