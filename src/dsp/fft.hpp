/**
 * @file
 * Radix-2 FFT and spectrum helpers.
 *
 * A self-contained iterative Cooley-Tukey implementation, sized for the
 * spectrogram use case (frames of 256-4096 bins).  Not intended to
 * compete with FFTW; it only needs to be correct and fast enough for
 * the attribution pipeline.
 */

#ifndef EMPROF_DSP_FFT_HPP
#define EMPROF_DSP_FFT_HPP

#include <complex>
#include <cstddef>
#include <vector>

namespace emprof::dsp {

/** In-place FFT of a power-of-two-length complex vector. */
void fft(std::vector<std::complex<double>> &data);

/** In-place inverse FFT of a power-of-two-length complex vector. */
void ifft(std::vector<std::complex<double>> &data);

/** True if n is a power of two (and nonzero). */
bool isPowerOfTwo(std::size_t n);

/** Smallest power of two >= n. */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * Magnitude spectrum of a real frame, zero-padded to a power of two.
 *
 * @param frame Real input samples.
 * @param fft_size Power-of-two transform size (>= frame.size()).
 * @return fft_size/2 + 1 magnitudes (DC .. Nyquist).
 */
std::vector<double> magnitudeSpectrum(const std::vector<double> &frame,
                                      std::size_t fft_size);

} // namespace emprof::dsp

#endif // EMPROF_DSP_FFT_HPP
