/**
 * @file
 * Lane-level operation policies shared by the batch SIMD kernels.
 *
 * The batch kernels (dsp::slidingMinMaxBatch, the profiler batch
 * pipeline) are written once as templates over a *policy* type that
 * supplies 8-wide float and 4-wide double lane operations.  Two
 * policies exist:
 *
 *  - lanes::Scalar — plain arrays, one C expression per lane.  This is
 *    the reference implementation and compiles everywhere.
 *  - lanes::Avx2  — AVX2 intrinsics, compiled only in translation
 *    units built with -mavx2 (guarded by __AVX2__).
 *
 * Bit-parity between the two variants is by construction: every Scalar
 * operation replicates the exact per-lane semantics of the matching
 * intrinsic, including tie and NaN behaviour:
 *
 *  - min(a,b) per lane is `a < b ? a : b` (returns b on ties and when
 *    either operand is NaN), exactly like _mm256_min_ps/_pd;
 *  - max(a,b) per lane is `a > b ? a : b`, like _mm256_max_ps/_pd;
 *  - ordered-quiet compares (lt/le) are false when a lane is NaN;
 *  - horizontal reductions use one fixed combining tree, spelled out
 *    lane by lane in the Scalar policy and with the identical pairing
 *    in the Avx2 policy.
 *
 * No FMA is used anywhere (the AVX2 translation units are built with
 * -mavx2 but *not* -mfma), so mul/sub/add/div round identically in
 * both variants.
 */

#ifndef EMPROF_DSP_SIMD_LANES_HPP
#define EMPROF_DSP_SIMD_LANES_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace emprof::dsp::lanes {

/** Reference policy: arrays with intrinsic-identical lane semantics. */
struct Scalar
{
    static constexpr bool kSimd = false;
    static constexpr const char *kName = "scalar";

    struct F8
    {
        float l[8];
    };
    struct D4
    {
        double l[4];
    };
    /** Compare results: one sign-bit-style flag per lane. */
    struct MF8
    {
        bool l[8];
    };
    struct MD4
    {
        bool l[4];
    };

    // ---- 8-wide float ----
    static F8
    f8_set1(float x)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = x;
        return r;
    }
    static F8
    f8_loadu(const float *p)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = p[k];
        return r;
    }
    static void
    f8_storeu(float *p, F8 v)
    {
        for (int k = 0; k < 8; ++k)
            p[k] = v.l[k];
    }
    static F8
    f8_min(F8 a, F8 b)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = a.l[k] < b.l[k] ? a.l[k] : b.l[k];
        return r;
    }
    static F8
    f8_max(F8 a, F8 b)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = a.l[k] > b.l[k] ? a.l[k] : b.l[k];
        return r;
    }
    static F8
    f8_sub(F8 a, F8 b)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = a.l[k] - b.l[k];
        return r;
    }
    static F8
    f8_mul(F8 a, F8 b)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = a.l[k] * b.l[k];
        return r;
    }
    template <int S>
    static F8
    f8_slide_up(F8 v, F8 fill)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = k < S ? fill.l[k] : v.l[k - S];
        return r;
    }
    template <int S>
    static F8
    f8_slide_dn(F8 v, F8 fill)
    {
        F8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = k + S > 7 ? fill.l[k] : v.l[k + S];
        return r;
    }
    static float
    f8_lane0(F8 v)
    {
        return v.l[0];
    }
    static F8
    f8_broadcast0(F8 v)
    {
        return f8_set1(v.l[0]);
    }
    static F8
    f8_broadcast7(F8 v)
    {
        return f8_set1(v.l[7]);
    }
    static MF8
    f8_lt(F8 a, F8 b)
    {
        MF8 r;
        for (int k = 0; k < 8; ++k)
            r.l[k] = a.l[k] < b.l[k];
        return r;
    }
    static int
    mf8_bits(MF8 m)
    {
        int b = 0;
        for (int k = 0; k < 8; ++k)
            b |= int(m.l[k]) << k;
        return b;
    }
    /** Fixed tree: (0,4)(1,5)(2,6)(3,7) -> (04,26)(15,37) -> r. */
    static float
    f8_hmin(F8 v)
    {
        const float m04 = v.l[0] < v.l[4] ? v.l[0] : v.l[4];
        const float m15 = v.l[1] < v.l[5] ? v.l[1] : v.l[5];
        const float m26 = v.l[2] < v.l[6] ? v.l[2] : v.l[6];
        const float m37 = v.l[3] < v.l[7] ? v.l[3] : v.l[7];
        const float a0 = m04 < m26 ? m04 : m26;
        const float a1 = m15 < m37 ? m15 : m37;
        return a0 < a1 ? a0 : a1;
    }
    static float
    f8_hmax(F8 v)
    {
        const float m04 = v.l[0] > v.l[4] ? v.l[0] : v.l[4];
        const float m15 = v.l[1] > v.l[5] ? v.l[1] : v.l[5];
        const float m26 = v.l[2] > v.l[6] ? v.l[2] : v.l[6];
        const float m37 = v.l[3] > v.l[7] ? v.l[3] : v.l[7];
        const float a0 = m04 > m26 ? m04 : m26;
        const float a1 = m15 > m37 ? m15 : m37;
        return a0 > a1 ? a0 : a1;
    }

    // ---- float8 <-> double4 ----
    static D4
    cvt_lo(F8 v)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = double(v.l[k]);
        return r;
    }
    static D4
    cvt_hi(F8 v)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = double(v.l[k + 4]);
        return r;
    }

    // ---- 4-wide double ----
    static D4
    d4_set1(double x)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = x;
        return r;
    }
    static D4
    d4_loadu(const double *p)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = p[k];
        return r;
    }
    static void
    d4_storeu(double *p, D4 v)
    {
        for (int k = 0; k < 4; ++k)
            p[k] = v.l[k];
    }
    static D4
    d4_add(D4 a, D4 b)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] + b.l[k];
        return r;
    }
    static D4
    d4_sub(D4 a, D4 b)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] - b.l[k];
        return r;
    }
    static D4
    d4_mul(D4 a, D4 b)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] * b.l[k];
        return r;
    }
    static D4
    d4_div(D4 a, D4 b)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] / b.l[k];
        return r;
    }
    static D4
    d4_min(D4 a, D4 b)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] < b.l[k] ? a.l[k] : b.l[k];
        return r;
    }
    static D4
    d4_max(D4 a, D4 b)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] > b.l[k] ? a.l[k] : b.l[k];
        return r;
    }
    static D4
    d4_abs(D4 a)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = std::fabs(a.l[k]);
        return r;
    }
    template <int S>
    static D4
    d4_slide_up(D4 v, D4 fill)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = k < S ? fill.l[k] : v.l[k - S];
        return r;
    }
    template <int S>
    static D4
    d4_slide_dn(D4 v, D4 fill)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = k + S > 3 ? fill.l[k] : v.l[k + S];
        return r;
    }
    static double
    d4_lane0(D4 v)
    {
        return v.l[0];
    }
    static D4
    d4_broadcast0(D4 v)
    {
        return d4_set1(v.l[0]);
    }
    static D4
    d4_broadcast3(D4 v)
    {
        return d4_set1(v.l[3]);
    }
    static MD4
    d4_lt(D4 a, D4 b)
    {
        MD4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] < b.l[k];
        return r;
    }
    static MD4
    d4_le(D4 a, D4 b)
    {
        MD4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] <= b.l[k];
        return r;
    }
    static MD4
    md4_or(MD4 a, MD4 b)
    {
        MD4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = a.l[k] || b.l[k];
        return r;
    }
    static D4
    d4_blendv(D4 a, D4 b, MD4 m)
    {
        D4 r;
        for (int k = 0; k < 4; ++k)
            r.l[k] = m.l[k] ? b.l[k] : a.l[k];
        return r;
    }
    static int
    md4_bits(MD4 m)
    {
        int b = 0;
        for (int k = 0; k < 4; ++k)
            b |= int(m.l[k]) << k;
        return b;
    }
    /** Fixed tree: (0,2)(1,3) -> r, like min_pd(lo128,hi128). */
    static double
    d4_hmin(D4 v)
    {
        const double m02 = v.l[0] < v.l[2] ? v.l[0] : v.l[2];
        const double m13 = v.l[1] < v.l[3] ? v.l[1] : v.l[3];
        return m02 < m13 ? m02 : m13;
    }
    static double
    d4_hmax(D4 v)
    {
        const double m02 = v.l[0] > v.l[2] ? v.l[0] : v.l[2];
        const double m13 = v.l[1] > v.l[3] ? v.l[1] : v.l[3];
        return m02 > m13 ? m02 : m13;
    }
};

#if defined(__AVX2__)

/** AVX2 policy; only visible in TUs compiled with -mavx2 (no FMA). */
struct Avx2
{
    static constexpr bool kSimd = true;
    static constexpr const char *kName = "avx2";

    using F8 = __m256;
    using D4 = __m256d;
    using MF8 = __m256;
    using MD4 = __m256d;

    // ---- 8-wide float ----
    static F8 f8_set1(float x) { return _mm256_set1_ps(x); }
    static F8 f8_loadu(const float *p) { return _mm256_loadu_ps(p); }
    static void f8_storeu(float *p, F8 v) { _mm256_storeu_ps(p, v); }
    static F8 f8_min(F8 a, F8 b) { return _mm256_min_ps(a, b); }
    static F8 f8_max(F8 a, F8 b) { return _mm256_max_ps(a, b); }
    static F8 f8_sub(F8 a, F8 b) { return _mm256_sub_ps(a, b); }
    static F8 f8_mul(F8 a, F8 b) { return _mm256_mul_ps(a, b); }
    template <int S>
    static F8
    f8_slide_up(F8 v, F8 fill)
    {
        static_assert(S == 1 || S == 2 || S == 4);
        if constexpr (S == 1) {
            __m256 r = _mm256_permutevar8x32_ps(
                v, _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6));
            return _mm256_blend_ps(r, fill, 0x01);
        } else if constexpr (S == 2) {
            __m256 r = _mm256_permutevar8x32_ps(
                v, _mm256_setr_epi32(0, 0, 0, 1, 2, 3, 4, 5));
            return _mm256_blend_ps(r, fill, 0x03);
        } else {
            __m256 r = _mm256_permutevar8x32_ps(
                v, _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 2, 3));
            return _mm256_blend_ps(r, fill, 0x0F);
        }
    }
    template <int S>
    static F8
    f8_slide_dn(F8 v, F8 fill)
    {
        static_assert(S == 1 || S == 2 || S == 4);
        if constexpr (S == 1) {
            __m256 r = _mm256_permutevar8x32_ps(
                v, _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 7));
            return _mm256_blend_ps(r, fill, 0x80);
        } else if constexpr (S == 2) {
            __m256 r = _mm256_permutevar8x32_ps(
                v, _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 7, 7));
            return _mm256_blend_ps(r, fill, 0xC0);
        } else {
            __m256 r = _mm256_permutevar8x32_ps(
                v, _mm256_setr_epi32(4, 5, 6, 7, 7, 7, 7, 7));
            return _mm256_blend_ps(r, fill, 0xF0);
        }
    }
    static float f8_lane0(F8 v) { return _mm256_cvtss_f32(v); }
    static F8
    f8_broadcast0(F8 v)
    {
        return _mm256_permutevar8x32_ps(v, _mm256_setzero_si256());
    }
    static F8
    f8_broadcast7(F8 v)
    {
        return _mm256_permutevar8x32_ps(v, _mm256_set1_epi32(7));
    }
    static MF8 f8_lt(F8 a, F8 b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
    static int mf8_bits(MF8 m) { return _mm256_movemask_ps(m); }
    static float
    f8_hmin(F8 v)
    {
        __m128 a = _mm_min_ps(_mm256_castps256_ps128(v),
                              _mm256_extractf128_ps(v, 1));
        a = _mm_min_ps(a, _mm_movehl_ps(a, a));
        a = _mm_min_ss(a, _mm_shuffle_ps(a, a, 1));
        return _mm_cvtss_f32(a);
    }
    static float
    f8_hmax(F8 v)
    {
        __m128 a = _mm_max_ps(_mm256_castps256_ps128(v),
                              _mm256_extractf128_ps(v, 1));
        a = _mm_max_ps(a, _mm_movehl_ps(a, a));
        a = _mm_max_ss(a, _mm_shuffle_ps(a, a, 1));
        return _mm_cvtss_f32(a);
    }

    // ---- float8 <-> double4 ----
    static D4 cvt_lo(F8 v) { return _mm256_cvtps_pd(_mm256_castps256_ps128(v)); }
    static D4 cvt_hi(F8 v) { return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)); }

    // ---- 4-wide double ----
    static D4 d4_set1(double x) { return _mm256_set1_pd(x); }
    static D4 d4_loadu(const double *p) { return _mm256_loadu_pd(p); }
    static void d4_storeu(double *p, D4 v) { _mm256_storeu_pd(p, v); }
    static D4 d4_add(D4 a, D4 b) { return _mm256_add_pd(a, b); }
    static D4 d4_sub(D4 a, D4 b) { return _mm256_sub_pd(a, b); }
    static D4 d4_mul(D4 a, D4 b) { return _mm256_mul_pd(a, b); }
    static D4 d4_div(D4 a, D4 b) { return _mm256_div_pd(a, b); }
    static D4 d4_min(D4 a, D4 b) { return _mm256_min_pd(a, b); }
    static D4 d4_max(D4 a, D4 b) { return _mm256_max_pd(a, b); }
    static D4
    d4_abs(D4 a)
    {
        const __m256d signbit = _mm256_set1_pd(-0.0);
        return _mm256_andnot_pd(signbit, a);
    }
    template <int S>
    static D4
    d4_slide_up(D4 v, D4 fill)
    {
        static_assert(S == 1 || S == 2);
        if constexpr (S == 1) {
            __m256d r = _mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0));
            return _mm256_blend_pd(r, fill, 0x01);
        } else {
            __m256d r = _mm256_permute4x64_pd(v, _MM_SHUFFLE(1, 0, 0, 0));
            return _mm256_blend_pd(r, fill, 0x03);
        }
    }
    template <int S>
    static D4
    d4_slide_dn(D4 v, D4 fill)
    {
        static_assert(S == 1 || S == 2);
        if constexpr (S == 1) {
            __m256d r = _mm256_permute4x64_pd(v, _MM_SHUFFLE(3, 3, 2, 1));
            return _mm256_blend_pd(r, fill, 0x08);
        } else {
            __m256d r = _mm256_permute4x64_pd(v, _MM_SHUFFLE(3, 3, 3, 2));
            return _mm256_blend_pd(r, fill, 0x0C);
        }
    }
    static double d4_lane0(D4 v) { return _mm256_cvtsd_f64(v); }
    static D4
    d4_broadcast0(D4 v)
    {
        return _mm256_permute4x64_pd(v, _MM_SHUFFLE(0, 0, 0, 0));
    }
    static D4
    d4_broadcast3(D4 v)
    {
        return _mm256_permute4x64_pd(v, _MM_SHUFFLE(3, 3, 3, 3));
    }
    static MD4 d4_lt(D4 a, D4 b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
    static MD4 d4_le(D4 a, D4 b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
    static MD4 md4_or(MD4 a, MD4 b) { return _mm256_or_pd(a, b); }
    static D4 d4_blendv(D4 a, D4 b, MD4 m) { return _mm256_blendv_pd(a, b, m); }
    static int md4_bits(MD4 m) { return _mm256_movemask_pd(m); }
    static double
    d4_hmin(D4 v)
    {
        __m128d a = _mm_min_pd(_mm256_castpd256_pd128(v),
                               _mm256_extractf128_pd(v, 1));
        a = _mm_min_sd(a, _mm_unpackhi_pd(a, a));
        return _mm_cvtsd_f64(a);
    }
    static double
    d4_hmax(D4 v)
    {
        __m128d a = _mm_max_pd(_mm256_castpd256_pd128(v),
                               _mm256_extractf128_pd(v, 1));
        a = _mm_max_sd(a, _mm_unpackhi_pd(a, a));
        return _mm_cvtsd_f64(a);
    }
};

#endif // __AVX2__

} // namespace emprof::dsp::lanes

#endif // EMPROF_DSP_SIMD_LANES_HPP
