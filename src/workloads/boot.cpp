#include "workloads/boot.hpp"

#include "dsp/rng.hpp"

namespace emprof::workloads {

namespace {

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * 1024;

/** One boot phase recipe. */
struct PhaseRecipe
{
    const char *name;

    /** Share of the total op budget. */
    double share;

    Addr codePc;
    uint32_t computeOps;
    uint32_t streamLoads;
    uint64_t streamFootprint;
    uint32_t randomLoads;
    uint64_t randomFootprint;
    bool dependent;
};

const PhaseRecipe kPhases[] = {
    // ROM stub: tiny loop, no memory traffic.
    {"rom_stub", 0.05, 0x1000, 48, 0, 0, 0, 0, true},
    // Bootloader copies the kernel image: pure streaming burst.
    {"image_copy", 0.18, 0x2000, 10, 4, 12 * kMiB, 0, 0, false},
    // Decompression: stream + window reuse.
    {"decompress", 0.20, 0x3000, 36, 2, 6 * kMiB, 1, 256 * kKiB, true},
    // Kernel init: pointer-heavy structure setup.
    {"kernel_init", 0.22, 0x4000, 40, 0, 0, 2, 3 * kMiB, true},
    // Driver probe: bursty mixed access.
    {"driver_probe", 0.15, 0x5000, 56, 1, 1 * kMiB, 1, 1 * kMiB, true},
    // Service startup: mostly compute, occasional touches.
    {"services", 0.20, 0x6000, 88, 0, 0, 1, 384 * kKiB, true},
};

} // namespace

std::vector<std::string>
bootPhaseNames()
{
    std::vector<std::string> names;
    for (const auto &phase : kPhases)
        names.emplace_back(phase.name);
    return names;
}

std::unique_ptr<SegmentedWorkload>
makeBoot(const BootConfig &config)
{
    auto w = std::make_unique<SegmentedWorkload>();
    dsp::Rng rng(config.seed);

    uint8_t phase_tag = 0;
    for (const auto &recipe : kPhases) {
        const double jitter =
            1.0 + config.jitter * (2.0 * rng.uniform() - 1.0);
        const uint64_t ops = static_cast<uint64_t>(
            static_cast<double>(config.scaleOps) * recipe.share * jitter);

        const uint64_t uses = recipe.dependent ? recipe.randomLoads : 0;
        const uint64_t per_iter = recipe.computeOps + recipe.streamLoads +
                                  recipe.randomLoads + uses + 1;
        const uint64_t iterations = ops / per_iter + 1;

        auto stream = std::make_shared<StreamAddresses>(
            0x4000'0000 + static_cast<Addr>(phase_tag) * 0x100'0000,
            recipe.streamFootprint ? recipe.streamFootprint : 64);
        auto random = std::make_shared<RandomAddresses>(
            0x8000'0000 + static_cast<Addr>(phase_tag) * 0x100'0000,
            recipe.randomFootprint ? recipe.randomFootprint : 64,
            config.seed ^ (phase_tag * 0x9E37ull));

        const PhaseRecipe r = recipe;
        const uint8_t tag = phase_tag;
        w->addSegment(
            r.name, iterations,
            [r, tag, stream, random](std::vector<MicroOp> &out, uint64_t) {
                Addr pc = emitCompute(out, r.codePc, r.computeOps, tag,
                                      /*mul_every=*/7);
                for (uint32_t s = 0; s < r.streamLoads; ++s)
                    pc = emitIndependentLoad(out, pc, stream->next(), tag);
                for (uint32_t d = 0; d < r.randomLoads; ++d) {
                    pc = r.dependent
                             ? emitDependentLoad(out, pc, random->next(),
                                                 tag)
                             : emitIndependentLoad(out, pc, random->next(),
                                                   tag);
                }
                emitLoopBranch(out, pc, tag);
            });
        ++phase_tag;
    }
    return w;
}

} // namespace emprof::workloads
