/**
 * @file
 * The validation microbenchmark of Fig. 6.
 *
 * Generates a known pattern of LLC misses: after touching every page
 * once (so no page faults — here, so the page-walk lines are already
 * cached) and running a tight marker loop, it performs exactly TM
 * loads of distinct, never-revisited cache lines in randomised order
 * (defeating any stride prefetcher), in groups of CM separated by a
 * micro-function call, then runs a closing marker loop.
 *
 * Because every measured-section line is distinct and absent from
 * every cache level, the section produces exactly TM LLC misses —
 * the a-priori-known count EMPROF is validated against (Table II).
 */

#ifndef EMPROF_WORKLOADS_MICROBENCHMARK_HPP
#define EMPROF_WORKLOADS_MICROBENCHMARK_HPP

#include <cstdint>
#include <vector>

#include "workloads/common.hpp"

namespace emprof::workloads {

/** Microbenchmark parameters (TM / CM per the paper). */
struct MicrobenchmarkConfig
{
    /** TM: total LLC misses the measured section produces. */
    uint64_t totalMisses = 1024;

    /** CM: consecutive misses per group. */
    uint64_t consecutiveMisses = 10;

    /** Iterations of each marker (blank) loop. */
    uint64_t blankLoopIterations = 20'000;

    /** Compute ops per marker-loop iteration. */
    uint32_t aluPerBlankIteration = 8;

    /**
     * Busy ops between loads, emulating the rand() + address
     * computation of the pseudocode.  This separation is what makes
     * consecutive misses individually resolvable in the signal
     * (Fig. 7b shows distinct dips within a CM=10 group).
     */
    uint32_t randWorkOps = 110;

    /** Ops in micro_function_call(), the group separator. */
    uint32_t microFnOps = 260;

    uint64_t pageBytes = 4096;
    uint64_t lineBytes = 64;

    /** Shuffle seed for the randomised access order. */
    uint64_t seed = 0x5EEDull;
};

/**
 * The Fig. 6 microbenchmark as a trace source.
 */
class Microbenchmark : public SegmentedWorkload
{
  public:
    /** Workload phases (tagged into every op for ground truth). */
    static constexpr uint8_t kPhaseSetup = 0;      ///< page touch
    static constexpr uint8_t kPhaseMarkerLead = 1; ///< first blank loop
    static constexpr uint8_t kPhaseMemAccess = 2;  ///< measured section
    static constexpr uint8_t kPhaseMarkerTail = 3; ///< last blank loop

    explicit Microbenchmark(const MicrobenchmarkConfig &config);

    /** The engineered LLC miss count of the measured section (== TM). */
    uint64_t expectedMisses() const { return config_.totalMisses; }

    const MicrobenchmarkConfig &benchConfig() const { return config_; }

  private:
    MicrobenchmarkConfig config_;

    /** Pre-shuffled distinct line addresses for the measured section. */
    std::vector<Addr> addresses_;
};

} // namespace emprof::workloads

#endif // EMPROF_WORKLOADS_MICROBENCHMARK_HPP
