/**
 * @file
 * Shared workload-construction machinery: a segment-based trace
 * generator, address-stream helpers, and op-emission utilities.
 *
 * Workloads are sequences of segments; each segment runs a body
 * callback for a given number of iterations, appending the ops of one
 * iteration per call.  This keeps memory O(one iteration) regardless
 * of trace length.
 */

#ifndef EMPROF_WORKLOADS_COMMON_HPP
#define EMPROF_WORKLOADS_COMMON_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "sim/isa.hpp"
#include "sim/trace.hpp"

namespace emprof::workloads {

using sim::Addr;
using sim::MicroOp;

/**
 * Trace source built from named segments.
 */
class SegmentedWorkload : public sim::ChunkedTraceSource
{
  public:
    /** Appends one iteration's ops; `iter` counts from 0. */
    using BodyFn = std::function<void(std::vector<MicroOp> &, uint64_t)>;

    /**
     * Append a segment.
     *
     * @param name Diagnostic name.
     * @param iterations Number of body invocations.
     * @param body Iteration generator.
     */
    void
    addSegment(std::string name, uint64_t iterations, BodyFn body)
    {
        segments_.push_back({std::move(name), iterations, std::move(body)});
    }

    /** Names of all segments, in execution order. */
    std::vector<std::string>
    segmentNames() const
    {
        std::vector<std::string> names;
        names.reserve(segments_.size());
        for (const auto &segment : segments_)
            names.push_back(segment.name);
        return names;
    }

  protected:
    void
    refill(std::vector<MicroOp> &out) override
    {
        // Batch iterations so the per-chunk virtual-call overhead is
        // amortised, but stay bounded.
        while (out.size() < 512 && current_ < segments_.size()) {
            auto &segment = segments_[current_];
            if (iter_ >= segment.iterations) {
                ++current_;
                iter_ = 0;
                continue;
            }
            segment.body(out, iter_++);
        }
    }

  private:
    struct Segment
    {
        std::string name;
        uint64_t iterations;
        BodyFn body;
    };

    std::vector<Segment> segments_;
    std::size_t current_ = 0;
    uint64_t iter_ = 0;
};

/** Sequential line-granular address stream over a footprint. */
class StreamAddresses
{
  public:
    StreamAddresses(Addr base, uint64_t footprint_bytes,
                    uint32_t line_bytes = 64)
        : base_(base), footprint_(footprint_bytes), line_(line_bytes)
    {}

    Addr
    next()
    {
        const Addr a = base_ + offset_;
        offset_ += line_;
        if (offset_ >= footprint_)
            offset_ = 0;
        return a;
    }

  private:
    Addr base_;
    uint64_t footprint_;
    uint32_t line_;
    uint64_t offset_ = 0;
};

/** Uniform-random line-granular address stream over a footprint. */
class RandomAddresses
{
  public:
    RandomAddresses(Addr base, uint64_t footprint_bytes, uint64_t seed,
                    uint32_t line_bytes = 64)
        : base_(base),
          lines_(footprint_bytes / line_bytes),
          line_(line_bytes),
          rng_(seed)
    {}

    Addr next() { return base_ + rng_.below(lines_) * line_; }

  private:
    Addr base_;
    uint64_t lines_;
    uint32_t line_;
    dsp::Rng rng_;
};

/**
 * Emit a run of compute ops with a mix of ALU/MUL/FP and sequential
 * PCs (4 bytes apart), returning the PC after the run.
 *
 * @param out Destination.
 * @param pc Starting PC.
 * @param count Number of ops.
 * @param phase Phase tag.
 * @param mul_every Insert an IntMul every N ops (0 = never).
 * @param fp_every Insert an FpAlu every N ops (0 = never).
 */
Addr emitCompute(std::vector<MicroOp> &out, Addr pc, uint32_t count,
                 uint8_t phase, uint32_t mul_every = 0,
                 uint32_t fp_every = 0);

/**
 * Emit a taken backward branch closing a loop body.
 */
void emitLoopBranch(std::vector<MicroOp> &out, Addr pc, uint8_t phase);

/**
 * Emit a load followed by a dependent consumer ALU op (the standard
 * "use the loaded value" idiom that makes an in-order core stall on
 * the miss).
 */
Addr emitDependentLoad(std::vector<MicroOp> &out, Addr pc, Addr mem_addr,
                       uint8_t phase);

/**
 * Emit a load whose result is not consumed promptly (streaming /
 * MLP-friendly access).
 */
Addr emitIndependentLoad(std::vector<MicroOp> &out, Addr pc, Addr mem_addr,
                         uint8_t phase);

} // namespace emprof::workloads

#endif // EMPROF_WORKLOADS_COMMON_HPP
