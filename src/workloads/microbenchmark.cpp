#include "workloads/microbenchmark.hpp"

namespace emprof::workloads {

namespace {

// Code-region bases (distinct I$ footprints per routine).
constexpr Addr kPcPageTouch = 0x6000;
constexpr Addr kPcBlank1 = 0x4000;
constexpr Addr kPcBlank2 = 0x5000;
constexpr Addr kPcRand = 0x2000;
constexpr Addr kPcMain = 0x1000;
constexpr Addr kPcMicroFn = 0x3000;

// Data array base, far from code.
constexpr Addr kArrayBase = 0x1000'0000;

} // namespace

Microbenchmark::Microbenchmark(const MicrobenchmarkConfig &config)
    : config_(config)
{
    // Build the measured section's address list: distinct lines, one
    // access each, randomised order.  Line 0 of each page is reserved
    // for the page-touch phase so the measured lines stay cold.
    const uint64_t lines_per_page =
        config_.pageBytes / config_.lineBytes - 1;
    const uint64_t pages =
        (config_.totalMisses + lines_per_page - 1) / lines_per_page;

    addresses_.reserve(config_.totalMisses);
    for (uint64_t i = 0; i < config_.totalMisses; ++i) {
        const uint64_t page = i / lines_per_page;
        const uint64_t line = 1 + i % lines_per_page;
        addresses_.push_back(kArrayBase + page * config_.pageBytes +
                             line * config_.lineBytes);
    }
    dsp::Rng rng(config_.seed);
    for (uint64_t i = addresses_.size(); i > 1; --i)
        std::swap(addresses_[i - 1], addresses_[rng.below(i)]);

    // --- Phase 0: page touch ------------------------------------------
    addSegment("page_touch", pages, [this](auto &out, uint64_t p) {
        Addr pc = kPcPageTouch;
        pc = emitDependentLoad(out, pc,
                               kArrayBase + p * config_.pageBytes,
                               kPhaseSetup);
        pc = emitCompute(out, pc, 6, kPhaseSetup);
        emitLoopBranch(out, pc, kPhaseSetup);
    });

    // --- Phase 1: leading blank (marker) loop -------------------------
    addSegment("blank_loop_1", config_.blankLoopIterations,
               [this](auto &out, uint64_t) {
                   Addr pc = emitCompute(out, kPcBlank1,
                                         config_.aluPerBlankIteration,
                                         kPhaseMarkerLead);
                   emitLoopBranch(out, pc, kPhaseMarkerLead);
               });

    // --- Phase 2: measured memory-access section ----------------------
    addSegment("memory_accesses", config_.totalMisses,
               [this](auto &out, uint64_t i) {
                   // rand() + page/line/address computation.
                   Addr pc = emitCompute(out, kPcRand, config_.randWorkOps,
                                         kPhaseMemAccess, /*mul_every=*/9);
                   // The load itself, with its value consumed (sum +=).
                   pc = emitDependentLoad(out, kPcMain, addresses_[i],
                                          kPhaseMemAccess);
                   emitLoopBranch(out, pc, kPhaseMemAccess);

                   // Group separator: micro_function_call().
                   if ((i + 1) % config_.consecutiveMisses == 0 &&
                       i + 1 < config_.totalMisses) {
                       Addr fn_pc = emitCompute(out, kPcMicroFn,
                                                config_.microFnOps,
                                                kPhaseMemAccess,
                                                /*mul_every=*/11);
                       emitLoopBranch(out, fn_pc, kPhaseMemAccess);
                   }
               });

    // --- Phase 3: trailing blank (marker) loop -------------------------
    addSegment("blank_loop_2", config_.blankLoopIterations,
               [this](auto &out, uint64_t) {
                   Addr pc = emitCompute(out, kPcBlank2,
                                         config_.aluPerBlankIteration,
                                         kPhaseMarkerTail);
                   emitLoopBranch(out, pc, kPhaseMarkerTail);
               });
}

} // namespace emprof::workloads
