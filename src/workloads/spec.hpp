/**
 * @file
 * Synthetic stand-ins for the ten SPEC CPU2000 integer benchmarks the
 * paper evaluates (Sec. VI, Table III/IV).
 *
 * We do not ship SPEC sources or inputs; each generator reproduces the
 * published memory *character* of its namesake — footprint, the mix of
 * streaming vs. random vs. pointer-chasing access, dependence structure
 * (MLP), phase structure and compute density — which is what determines
 * every EMPROF-relevant behaviour (miss rate, stall lengths, overlap,
 * spectral signature).  Ground truth always comes from the simulator,
 * so accuracy results remain meaningful under the substitution; see
 * DESIGN.md.
 */

#ifndef EMPROF_WORKLOADS_SPEC_HPP
#define EMPROF_WORKLOADS_SPEC_HPP

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/common.hpp"

namespace emprof::workloads {

/** Metadata for one synthetic SPEC workload. */
struct SpecInfo
{
    std::string name;

    /** One-line description of the modelled memory behaviour. */
    std::string character;
};

/** The ten modelled benchmarks, in the paper's table order. */
const std::vector<SpecInfo> &specSuite();

/** Names only, in suite order. */
std::vector<std::string> specNames();

/**
 * Instantiate a workload by name.
 *
 * @param name One of specNames().
 * @param scale_ops Approximate dynamic op count (runtime scales
 *        linearly; the default keeps a full-suite sweep tractable).
 * @param seed Seed for the workload's random address streams.
 * @return The trace source, or nullptr for an unknown name.
 */
std::unique_ptr<SegmentedWorkload> makeSpec(std::string_view name,
                                            uint64_t scale_ops = 2'000'000,
                                            uint64_t seed = 1);

/**
 * Phase tags used by the `parser` workload, whose three functions are
 * the attribution targets of Fig. 14 / Table V.
 */
struct ParserPhases
{
    static constexpr uint8_t kReadDictionary = 1;
    static constexpr uint8_t kInitRandtable = 2;
    static constexpr uint8_t kBatchProcess = 3;

    /** Function names in phase order (for Table V rendering). */
    static std::vector<std::string> names();
};

} // namespace emprof::workloads

#endif // EMPROF_WORKLOADS_SPEC_HPP
