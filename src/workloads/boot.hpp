/**
 * @file
 * Synthetic boot-sequence workload (Sec. VI-C, Fig. 13).
 *
 * A device boot is a sequence of phases with sharply different memory
 * behaviour: a tiny ROM stub, image copy/decompression bursts, pointer
 * heavy kernel initialisation, bursty driver probing, and a quiescent
 * service-startup tail.  Run-to-run variation (storage timing, probe
 * order) is modelled with per-run jitter on phase lengths, which is
 * why the paper plots two distinct boot runs.
 */

#ifndef EMPROF_WORKLOADS_BOOT_HPP
#define EMPROF_WORKLOADS_BOOT_HPP

#include <memory>
#include <string>
#include <vector>

#include "workloads/common.hpp"

namespace emprof::workloads {

/** Boot-sequence parameters. */
struct BootConfig
{
    /** Overall scale: approximate dynamic ops for the whole boot. */
    uint64_t scaleOps = 4'000'000;

    /** Run-to-run phase-length jitter as a fraction (+/-). */
    double jitter = 0.15;

    /** Seed: different seeds model distinct boot runs. */
    uint64_t seed = 0xB007ull;
};

/** Names of the boot phases, in order. */
std::vector<std::string> bootPhaseNames();

/** Build a boot-sequence trace. */
std::unique_ptr<SegmentedWorkload> makeBoot(const BootConfig &config = {});

} // namespace emprof::workloads

#endif // EMPROF_WORKLOADS_BOOT_HPP
