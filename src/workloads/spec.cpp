#include "workloads/spec.hpp"

#include <memory>

namespace emprof::workloads {

namespace {

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * 1024;

/**
 * One loop kernel.  Each iteration executes compute plus a few
 * cache-resident loads; every `burstEvery` iterations it additionally
 * touches cold data (streaming lines, random lines, or a pointer
 * chase).  Real programs spend most cycles in compute and L1/LLC hits
 * with LLC misses arriving in sparse bursts — this is what keeps the
 * stall share in the paper's 0.1-10% range while still exercising
 * every miss pattern EMPROF has to recognise.
 */
struct KernelSpec
{
    Addr codePc = 0x10000;
    Addr dataBase = 0x2000'0000;

    /** Compute ops per iteration. */
    uint32_t computeOps = 120;
    uint32_t mulEvery = 0;
    uint32_t fpEvery = 0;

    /** Cache-resident dependent loads per iteration. */
    uint32_t residentLoads = 1;
    uint64_t residentFootprint = 1 * kKiB;

    /** Iterations between cold bursts (0 = no cold accesses). */
    uint32_t burstEvery = 0;

    /** Sequential (prefetchable) cold loads per burst, independent. */
    uint32_t burstStreamLoads = 0;
    uint64_t coldStreamFootprint = 256 * kKiB;

    /** Random cold loads per burst. */
    uint32_t burstRandomLoads = 0;
    uint64_t coldRandomFootprint = 256 * kKiB;

    /** Random burst loads consume their value (stall-on-use). */
    bool dependentRandom = true;

    /** Pointer-chase: each burst load depends on the previous load. */
    bool chase = false;

    /**
     * Compute ops between consecutive burst loads (index arithmetic,
     * element processing).  Wide spacing makes each miss individually
     * resolvable in the signal; tight spacing (bzip2's block moves,
     * equake's gathers) makes misses overlap and merge — the paper's
     * Fig. 3 behaviour, and why those two benchmarks have the lowest
     * miss accuracy in Table III.
     */
    uint32_t interLoadOps = 44;

    uint8_t phase = 0;
};

/** Mutable per-segment state shared across iterations. */
struct KernelState
{
    KernelState(const KernelSpec &spec, uint64_t seed)
        : resident(spec.dataBase, spec.residentFootprint, seed ^ 0x1),
          stream(spec.dataBase + 0x400'0000, spec.coldStreamFootprint),
          random(spec.dataBase + 0x800'0000, spec.coldRandomFootprint,
                 seed ^ 0x2)
    {}

    RandomAddresses resident;
    StreamAddresses stream;
    RandomAddresses random;

    /** Ops emitted since the last load (for chase dependences). */
    uint32_t sinceLoad = 250;
};

/** Mean ops per iteration (for sizing segments from an op budget). */
uint64_t
opsPerIteration(const KernelSpec &spec)
{
    uint64_t ops = spec.computeOps + 2ull * spec.residentLoads + 1;
    if (spec.burstEvery != 0) {
        const uint64_t uses =
            (spec.dependentRandom && !spec.chase) ? spec.burstRandomLoads
                                                  : 0;
        ops += (spec.burstStreamLoads + spec.burstRandomLoads + uses) /
               spec.burstEvery;
    }
    return ops;
}

/** Add a segment running @p iterations of the kernel. */
void
addKernel(SegmentedWorkload &w, std::string name, uint64_t iterations,
          const KernelSpec &spec, uint64_t seed)
{
    auto state = std::make_shared<KernelState>(spec, seed);
    w.addSegment(
        std::move(name), iterations,
        [state, spec](std::vector<MicroOp> &out, uint64_t iter) {
            Addr pc = spec.codePc;

            // Compute split around the resident loads.
            const uint32_t chunk =
                spec.computeOps / (spec.residentLoads + 1);
            uint32_t emitted = 0;
            for (uint32_t l = 0; l < spec.residentLoads; ++l) {
                pc = emitCompute(out, pc, chunk, spec.phase, spec.mulEvery,
                                 spec.fpEvery);
                pc = emitDependentLoad(out, pc, state->resident.next(),
                                       spec.phase);
                emitted += chunk;
            }
            pc = emitCompute(out, pc, spec.computeOps - emitted, spec.phase,
                             spec.mulEvery, spec.fpEvery);

            // Cold burst.
            if (spec.burstEvery != 0 &&
                iter % spec.burstEvery == spec.burstEvery - 1) {
                Addr bpc = spec.codePc + 0x800;
                bool first = true;
                auto spacer = [&]() {
                    if (!first) {
                        bpc = emitCompute(out, bpc, spec.interLoadOps,
                                          spec.phase);
                    }
                    first = false;
                };
                for (uint32_t s = 0; s < spec.burstStreamLoads; ++s) {
                    spacer();
                    bpc = emitIndependentLoad(out, bpc,
                                              state->stream.next(),
                                              spec.phase);
                }
                state->sinceLoad = 250;
                for (uint32_t r = 0; r < spec.burstRandomLoads; ++r) {
                    spacer();
                    if (spec.chase) {
                        MicroOp load =
                            sim::makeLoad(bpc, state->random.next());
                        load.phase = spec.phase;
                        load.depDist = static_cast<uint16_t>(
                            state->sinceLoad < 250 ? state->sinceLoad : 0);
                        out.push_back(load);
                        bpc += 4;
                        // Each hop's node is inspected immediately, so
                        // even the first hop of a chain stalls on use.
                        MicroOp use = sim::makeAlu(bpc, /*dep=*/1);
                        use.phase = spec.phase;
                        out.push_back(use);
                        bpc += 4;
                        state->sinceLoad = 2 + spec.interLoadOps;
                    } else if (spec.dependentRandom) {
                        bpc = emitDependentLoad(out, bpc,
                                                state->random.next(),
                                                spec.phase);
                    } else {
                        bpc = emitIndependentLoad(out, bpc,
                                                  state->random.next(),
                                                  spec.phase);
                    }
                }
                pc = bpc;
            }
            emitLoopBranch(out, pc, spec.phase);
        });
}

/** Iterations so the segment emits approximately @p ops dynamic ops. */
uint64_t
iterationsFor(uint64_t ops, const KernelSpec &spec)
{
    const uint64_t per = opsPerIteration(spec);
    return per == 0 ? 1 : (ops + per - 1) / per;
}

std::unique_ptr<SegmentedWorkload>
makeAmmp(uint64_t ops, uint64_t seed)
{
    // FP molecular dynamics: force computation over resident atoms,
    // periodic dependent gathers from a 2 MiB neighbour structure.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x10000;
    k.computeOps = 120;
    k.fpEvery = 3;
    k.residentLoads = 2;
    k.burstEvery = 85;
    k.burstRandomLoads = 2;
    k.interLoadOps = 240; // neighbour processing between gathers
    k.coldRandomFootprint = 128 * kKiB;
    addKernel(*w, "force_compute", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeBzip2(uint64_t ops, uint64_t seed)
{
    // Block compression: long compute stretches punctuated by block
    // moves — bursts of independent sequential line fetches with MLP
    // (these are what a stride prefetcher can hide).
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x20000;
    k.computeOps = 180;
    k.mulEvery = 7;
    k.residentLoads = 1;
    k.burstEvery = 160;
    k.burstStreamLoads = 8;
    k.coldStreamFootprint = 512 * kKiB;
    addKernel(*w, "compress", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeCrafty(uint64_t ops, uint64_t seed)
{
    // Chess search: branchy compute over resident state; sparse hash
    // probes into a table that fits a 1 MiB LLC far better than a
    // 256 KiB one.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x30000;
    k.computeOps = 200;
    k.mulEvery = 10;
    k.residentLoads = 2;
    k.burstEvery = 190;
    k.burstRandomLoads = 1;
    k.coldRandomFootprint = 24 * kKiB;
    addKernel(*w, "search", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeEquake(uint64_t ops, uint64_t seed)
{
    // Sparse-matrix FP: indexed gathers (independent - MLP) plus
    // streaming through the matrix.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x40000;
    k.computeOps = 140;
    k.fpEvery = 3;
    k.residentLoads = 1;
    k.burstEvery = 95;
    k.burstStreamLoads = 2;
    k.coldStreamFootprint = 384 * kKiB;
    k.burstRandomLoads = 4;
    k.coldRandomFootprint = 256 * kKiB;
    k.dependentRandom = false;
    k.interLoadOps = 70; // semi-tight gathers: some MLP merging remains
    addKernel(*w, "smvp", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeGzip(uint64_t ops, uint64_t seed)
{
    // LZ77: sliding-window matching is resident; the input stream is
    // fetched in sequential prefetchable bursts.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x50000;
    k.computeOps = 150;
    k.mulEvery = 8;
    k.residentLoads = 2;
    k.residentFootprint = 1536;
    k.burstEvery = 420;
    k.burstStreamLoads = 3;
    k.coldStreamFootprint = 128 * kKiB;
    addKernel(*w, "deflate", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeMcf(uint64_t ops, uint64_t seed)
{
    // Network simplex: sparse but brutal — bursts of pointer chasing
    // over 8 MiB, each hop fully exposed (no MLP).  Produces the long
    // serial stalls that give mcf its heavy latency tail (Fig. 11).
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x60000;
    k.computeOps = 64;
    k.residentLoads = 1;
    k.burstEvery = 780;
    k.burstRandomLoads = 3;
    k.coldRandomFootprint = 512 * kKiB;
    k.chase = true;
    k.interLoadOps = 230; // per-hop node processing (chain fits the
                           // core scoreboard window)
    addKernel(*w, "refresh_potential", iterationsFor(ops * 7 / 10, k), k,
              seed);

    KernelSpec arcs;
    arcs.codePc = 0x64000;
    arcs.computeOps = 90;
    arcs.residentLoads = 1;
    arcs.burstEvery = 156;
    arcs.burstRandomLoads = 1;
    arcs.coldRandomFootprint = 256 * kKiB;
    addKernel(*w, "price_out", iterationsFor(ops * 3 / 10, arcs), arcs,
              seed + 1);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeParser(uint64_t ops, uint64_t seed)
{
    // Three functions with distinct spectral signatures and miss
    // characters (Fig. 14 / Table V).
    auto w = std::make_unique<SegmentedWorkload>();

    KernelSpec rd;
    rd.codePc = 0x70000;
    rd.computeOps = 150;
    rd.mulEvery = 12;
    rd.residentLoads = 1;
    rd.burstEvery = 65;
    rd.interLoadOps = 200;
    rd.burstStreamLoads = 2;
    rd.coldStreamFootprint = 192 * kKiB;
    rd.phase = ParserPhases::kReadDictionary;
    addKernel(*w, "read_dictionary", iterationsFor(ops * 3 / 10, rd), rd,
              seed);

    KernelSpec init;
    init.codePc = 0x74000;
    init.computeOps = 52;
    init.mulEvery = 4;
    init.residentLoads = 1;
    init.burstEvery = 1080;
    init.burstRandomLoads = 1;
    init.coldRandomFootprint = 32 * kKiB;
    init.phase = ParserPhases::kInitRandtable;
    addKernel(*w, "init_randtable", iterationsFor(ops / 10, init), init,
              seed + 1);

    KernelSpec batch;
    batch.codePc = 0x78000;
    batch.computeOps = 280;
    batch.mulEvery = 9;
    batch.residentLoads = 2;
    batch.burstEvery = 33;
    batch.interLoadOps = 240;
    batch.burstRandomLoads = 2;
    batch.coldRandomFootprint = 384 * kKiB;
    batch.phase = ParserPhases::kBatchProcess;
    addKernel(*w, "batch_process", iterationsFor(ops * 6 / 10, batch),
              batch, seed + 2);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeTwolf(uint64_t ops, uint64_t seed)
{
    // Place-and-route: working set between the LLC sizes — misses on
    // the 256 KiB devices, largely resident in Alcatel's 1 MiB.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x80000;
    k.computeOps = 130;
    k.mulEvery = 7;
    k.residentLoads = 1;
    k.burstEvery = 97;
    k.burstRandomLoads = 1;
    k.coldRandomFootprint = 20 * kKiB;
    addKernel(*w, "place", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeVortex(uint64_t ops, uint64_t seed)
{
    // Object database: sequential segment scans plus dependent object
    // dereferences into a 1.5 MiB heap.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0x90000;
    k.computeOps = 120;
    k.mulEvery = 9;
    k.residentLoads = 1;
    k.burstEvery = 207;
    k.burstStreamLoads = 1;
    k.interLoadOps = 200;
    k.coldStreamFootprint = 256 * kKiB;
    k.burstRandomLoads = 1;
    k.coldRandomFootprint = 48 * kKiB;
    addKernel(*w, "object_lookup", iterationsFor(ops, k), k, seed);
    return w;
}

std::unique_ptr<SegmentedWorkload>
makeVpr(uint64_t ops, uint64_t seed)
{
    // FPGA routing: compute-bound; the routing grid slightly exceeds a
    // 256 KiB LLC so misses are rare everywhere and rarer on Alcatel.
    auto w = std::make_unique<SegmentedWorkload>();
    KernelSpec k;
    k.codePc = 0xA0000;
    k.computeOps = 180;
    k.mulEvery = 6;
    k.fpEvery = 9;
    k.residentLoads = 2;
    k.burstEvery = 310;
    k.burstRandomLoads = 1;
    k.coldRandomFootprint = 20 * kKiB;
    addKernel(*w, "route", iterationsFor(ops, k), k, seed);
    return w;
}

} // namespace

const std::vector<SpecInfo> &
specSuite()
{
    static const std::vector<SpecInfo> suite = {
        {"ammp", "FP compute with periodic dependent neighbour gathers"},
        {"bzip2", "compute with prefetchable block-move bursts (MLP)"},
        {"crafty", "branchy compute, sparse probes into a 768 KiB table"},
        {"equake", "sparse-matrix FP: independent gathers + streaming"},
        {"gzip", "resident sliding window, sequential input bursts"},
        {"mcf", "bursts of pointer chasing over 8 MiB, no MLP"},
        {"parser", "3-phase: dictionary load / table init / batch parse"},
        {"twolf", "working set between 256 KiB and 1 MiB"},
        {"vortex", "object-database scans and dependent dereferences"},
        {"vpr", "compute-bound, grid slightly exceeding 256 KiB"},
    };
    return suite;
}

std::vector<std::string>
specNames()
{
    std::vector<std::string> names;
    names.reserve(specSuite().size());
    for (const auto &info : specSuite())
        names.push_back(info.name);
    return names;
}

std::vector<std::string>
ParserPhases::names()
{
    return {"read_dictionary", "init_randtable", "batch_process"};
}

std::unique_ptr<SegmentedWorkload>
makeSpec(std::string_view name, uint64_t scale_ops, uint64_t seed)
{
    if (name == "ammp")
        return makeAmmp(scale_ops, seed);
    if (name == "bzip2")
        return makeBzip2(scale_ops, seed);
    if (name == "crafty")
        return makeCrafty(scale_ops, seed);
    if (name == "equake")
        return makeEquake(scale_ops, seed);
    if (name == "gzip")
        return makeGzip(scale_ops, seed);
    if (name == "mcf")
        return makeMcf(scale_ops, seed);
    if (name == "parser")
        return makeParser(scale_ops, seed);
    if (name == "twolf")
        return makeTwolf(scale_ops, seed);
    if (name == "vortex")
        return makeVortex(scale_ops, seed);
    if (name == "vpr")
        return makeVpr(scale_ops, seed);
    return nullptr;
}

} // namespace emprof::workloads
