#include "workloads/common.hpp"

namespace emprof::workloads {

Addr
emitCompute(std::vector<MicroOp> &out, Addr pc, uint32_t count,
            uint8_t phase, uint32_t mul_every, uint32_t fp_every)
{
    for (uint32_t i = 0; i < count; ++i) {
        MicroOp op = sim::makeAlu(pc);
        if (mul_every != 0 && i % mul_every == mul_every - 1)
            op.cls = sim::OpClass::IntMul;
        else if (fp_every != 0 && i % fp_every == fp_every - 1)
            op.cls = sim::OpClass::FpAlu;
        // Short dependence chains keep the issue width partially
        // utilised, like real scalar code.
        op.depDist = (i % 3 == 2) ? 2 : 0;
        op.phase = phase;
        out.push_back(op);
        pc += 4;
    }
    return pc;
}

void
emitLoopBranch(std::vector<MicroOp> &out, Addr pc, uint8_t phase)
{
    MicroOp branch = sim::makeBranch(pc, true);
    branch.phase = phase;
    out.push_back(branch);
}

Addr
emitDependentLoad(std::vector<MicroOp> &out, Addr pc, Addr mem_addr,
                  uint8_t phase)
{
    MicroOp load = sim::makeLoad(pc, mem_addr);
    load.phase = phase;
    out.push_back(load);
    pc += 4;

    MicroOp use = sim::makeAlu(pc, /*dep=*/1);
    use.phase = phase;
    out.push_back(use);
    return pc + 4;
}

Addr
emitIndependentLoad(std::vector<MicroOp> &out, Addr pc, Addr mem_addr,
                    uint8_t phase)
{
    MicroOp load = sim::makeLoad(pc, mem_addr);
    load.phase = phase;
    out.push_back(load);
    return pc + 4;
}

} // namespace emprof::workloads
