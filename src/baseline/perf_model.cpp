#include "baseline/perf_model.hpp"

namespace emprof::baseline {

namespace {

// Distinct PC/data regions for injected OS code.
constexpr sim::Addr kHandlerPc = 0xF000'0000;
constexpr sim::Addr kOsDataBase = 0xA000'0000;

} // namespace

InterruptInjector::InterruptInjector(sim::TraceSource &base,
                                     const InterruptConfig &config)
    : base_(base),
      config_(config),
      osData_(kOsDataBase, config.osFootprint)
{}

void
InterruptInjector::buildHandler()
{
    pending_.clear();
    pendingCursor_ = 0;

    // Entry: the handler's own code and stack traffic, then the
    // counter-save / softirq data touches.
    sim::Addr pc = kHandlerPc;
    const uint32_t compute_per_load =
        config_.handlerComputeOps / (config_.handlerLines + 1);
    for (uint32_t i = 0; i < config_.handlerLines; ++i) {
        pc = workloads::emitCompute(pending_, pc, compute_per_load, 15);
        pc = workloads::emitIndependentLoad(pending_, pc, osData_.next(),
                                            15);
    }
    workloads::emitLoopBranch(pending_, pc, 15);
}

bool
InterruptInjector::next(sim::MicroOp &op)
{
    // Drain any in-progress handler first.
    if (pendingCursor_ < pending_.size()) {
        op = pending_[pendingCursor_++];
        ++injected_;
        return true;
    }

    if (sinceInterrupt_ >= config_.opsBetweenInterrupts) {
        sinceInterrupt_ = 0;
        buildHandler();
        if (!pending_.empty()) {
            op = pending_[pendingCursor_++];
            ++injected_;
            return true;
        }
    }

    if (!base_.next(op))
        return false;
    ++base_ops_;
    ++sinceInterrupt_;
    return true;
}

uint64_t
multiplexedCount(const sim::GroundTruth &gt, sim::Cycle total_cycles,
                 const MultiplexConfig &config, uint64_t run_seed)
{
    const auto &events = gt.rawEvents();
    if (total_cycles == 0)
        return 0;

    dsp::Rng rng(config.seed ^ run_seed);
    const uint64_t num_windows =
        total_cycles / config.windowCycles + 1;

    // Decide, per window, whether the LLC-miss counter was scheduled.
    std::vector<bool> scheduled(num_windows);
    for (uint64_t w = 0; w < num_windows; ++w)
        scheduled[w] = rng.chance(config.scheduledShare);

    uint64_t counted = 0;
    for (const auto &ev : events) {
        const uint64_t w = ev.detect / config.windowCycles;
        if (w < num_windows && scheduled[w])
            ++counted;
    }

    // The kernel extrapolates: count * (time_enabled / time_running).
    return static_cast<uint64_t>(
        static_cast<double>(counted) / config.scheduledShare + 0.5);
}

} // namespace emprof::baseline
