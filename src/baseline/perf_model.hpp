/**
 * @file
 * Hardware-counter ("perf") baseline.
 *
 * Sec. V of the paper motivates EMPROF with a measurement: counting
 * LLC misses with perf for an application engineered to generate
 * exactly 1024 misses reported 32768 on average with a standard
 * deviation of 14543.  Two effects drive that: (1) the counter counts
 * *every* miss on the core — OS timer ticks, profiling interrupts and
 * background services included — and (2) counters are time-multiplexed
 * across events, so the kernel extrapolates from scheduled windows,
 * which interacts catastrophically with bursty miss streams.
 *
 * This module reproduces both mechanisms inside the simulator: an
 * interrupt injector interleaves OS/handler activity into the profiled
 * trace (a real observer effect — the injected ops miss the caches and
 * perturb timing), and the counter model samples the detailed miss
 * trace through randomly scheduled multiplex windows and extrapolates.
 */

#ifndef EMPROF_BASELINE_PERF_MODEL_HPP
#define EMPROF_BASELINE_PERF_MODEL_HPP

#include <cstdint>
#include <memory>

#include "dsp/rng.hpp"
#include "sim/config.hpp"
#include "sim/ground_truth.hpp"
#include "sim/trace.hpp"
#include "workloads/common.hpp"

namespace emprof::baseline {

/** Interrupt/OS-activity injection parameters. */
struct InterruptConfig
{
    /** Profiled ops between interrupts (timer tick cadence). */
    uint64_t opsBetweenInterrupts = 30'000;

    /** Cache lines the handler + softirq path touches per interrupt. */
    uint32_t handlerLines = 400;

    /** Compute ops in the handler per interrupt. */
    uint32_t handlerComputeOps = 900;

    /** OS working set cycled through by successive handlers (bytes);
     *  large enough that handler lines are usually cold again. */
    uint64_t osFootprint = 24ull * 1024 * 1024;

    uint64_t seed = 0x05C41ull;
};

/**
 * Wraps a trace source, interleaving OS interrupt activity.
 */
class InterruptInjector : public sim::TraceSource
{
  public:
    /**
     * @param base Profiled workload (not owned; must outlive this).
     * @param config Injection parameters.
     */
    InterruptInjector(sim::TraceSource &base, const InterruptConfig &config);

    bool next(sim::MicroOp &op) override;

    /** Injected ops so far (overhead accounting). */
    uint64_t injectedOps() const { return injected_; }

    /** Ops delivered from the profiled workload. */
    uint64_t baseOps() const { return base_ops_; }

  private:
    /** Build one handler activation into the pending buffer. */
    void buildHandler();

    sim::TraceSource &base_;
    InterruptConfig config_;
    workloads::StreamAddresses osData_;
    std::vector<sim::MicroOp> pending_;
    std::size_t pendingCursor_ = 0;
    uint64_t sinceInterrupt_ = 0;
    uint64_t injected_ = 0;
    uint64_t base_ops_ = 0;
};

/** Counter multiplexing model. */
struct MultiplexConfig
{
    /** Fraction of time the LLC-miss counter is scheduled. */
    double scheduledShare = 0.25;

    /** Multiplex window length in cycles (kernel rotation period). */
    uint64_t windowCycles = 250'000;

    uint64_t seed = 0x30D0ull;
};

/** One simulated `perf stat` measurement. */
struct PerfMeasurement
{
    /** What perf reports after extrapolation. */
    uint64_t reportedMisses = 0;

    /** Misses actually caused by the profiled section alone. */
    uint64_t engineeredMisses = 0;

    /** All misses on the core (app + OS + handlers). */
    uint64_t totalMisses = 0;

    /** Runtime overhead of the injected profiling activity (%). */
    double overheadPercent = 0.0;
};

/**
 * Extrapolate a reported count from the detailed miss trace through
 * randomly scheduled multiplex windows.
 *
 * @param gt Ground truth from a detailed-mode run.
 * @param total_cycles Run length.
 * @param config Multiplexing parameters.
 * @param run_seed Per-run seed (windows land differently every run).
 */
uint64_t multiplexedCount(const sim::GroundTruth &gt, sim::Cycle total_cycles,
                          const MultiplexConfig &config, uint64_t run_seed);

} // namespace emprof::baseline

#endif // EMPROF_BASELINE_PERF_MODEL_HPP
