/**
 * @file
 * EMCAP on-disk format: the byte layout of a capture container.
 *
 * EMPROF captures are minutes of multi-MHz sampling; the legacy
 * formats (headerless raw f32, the 32-byte .emsig header) force the
 * analyzer to slurp an opaque blob serially with no integrity check.
 * EMCAP is a self-describing stream of independently-decodable chunks:
 *
 *     | FileHeader | chunk 0 | chunk 1 | ... | footer index | tail |
 *
 * Each chunk is a small header plus an encoded payload and carries its
 * own CRC32C, so a flipped bit is pinned to one chunk and the rest of
 * the capture survives.  The footer index (offset + first-sample per
 * chunk) enables O(1) seek to any sample range and lets a thread pool
 * decode chunks concurrently.  See DESIGN.md §9 for byte diagrams.
 *
 * All multi-byte fields are little-endian; the structs below are the
 * format (as with .emsig, asserted by static_assert on their sizes).
 */

#ifndef EMPROF_STORE_EMCAP_FORMAT_HPP
#define EMPROF_STORE_EMCAP_FORMAT_HPP

#include <cstddef>
#include <cstdint>

namespace emprof::store {

/** File magic, first four bytes of every EMCAP file. */
constexpr char kEmcapMagic[4] = {'E', 'M', 'C', 'P'};

/** Footer magic, last four bytes of every EMCAP file. */
constexpr char kFooterMagic[4] = {'E', 'M', 'C', 'F'};

constexpr uint32_t kEmcapVersion = 1;

/** How samples are represented before chunk encoding. */
enum class SampleCodec : uint32_t
{
    F32 = 1,      ///< lossless: the float bit patterns themselves
    QuantI16 = 2, ///< quantised to <= 16-bit ints, per-chunk scale
};

/** How one chunk's integer stream is laid out on disk. */
enum class ChunkEncoding : uint32_t
{
    Raw = 0,         ///< verbatim i16/f32 little-endian array
    DeltaPacked = 1, ///< delta + zig-zag + per-miniblock bit packing
};

/**
 * Fixed 72-byte file header.  headerCrc is CRC32C over the preceding
 * 68 bytes; totalSamples is back-patched when the writer finalises
 * (the footer tail carries the authoritative copy too, and the two
 * must agree).
 */
struct FileHeader
{
    char magic[4];        ///< kEmcapMagic
    uint32_t version;     ///< kEmcapVersion
    uint32_t codec;       ///< SampleCodec
    uint32_t quantBits;   ///< quantiser bits (0 for F32)
    double sampleRateHz;  ///< magnitude sample rate
    double clockHz;       ///< target processor clock (0 = unknown)
    uint64_t totalSamples;
    char deviceName[24];  ///< NUL-padded capture source name
    uint32_t reserved;    ///< zero
    uint32_t headerCrc;
};
static_assert(sizeof(FileHeader) == 72, "header layout is the format");

/**
 * 20-byte per-chunk header, immediately followed by payloadBytes of
 * encoded samples.  crc is CRC32C over the first 16 header bytes and
 * then the payload, so any flipped bit in either is detected.
 */
struct ChunkHeader
{
    uint32_t encoding;    ///< ChunkEncoding
    uint32_t sampleCount; ///< samples decoded from this chunk
    uint32_t payloadBytes;
    float scale;          ///< i16 dequantisation step (1.0 for F32)
    uint32_t crc;
};
static_assert(sizeof(ChunkHeader) == 20, "chunk layout is the format");

/** 24-byte footer index entry, one per chunk, in file order. */
struct ChunkIndexEntry
{
    uint64_t fileOffset;  ///< offset of the ChunkHeader
    uint64_t firstSample; ///< global index of the chunk's first sample
    uint32_t sampleCount;
    uint32_t storedBytes; ///< sizeof(ChunkHeader) + payloadBytes
};
static_assert(sizeof(ChunkIndexEntry) == 24, "index layout is the format");

/**
 * Fixed 24-byte tail, last bytes of the file.  The index entries sit
 * directly before it; footerCrc is CRC32C over those entries plus the
 * tail's first 16 bytes (chunkCount, totalSamples).
 */
struct FooterTail
{
    uint64_t chunkCount;
    uint64_t totalSamples;
    uint32_t footerCrc;
    char magic[4]; ///< kFooterMagic
};
static_assert(sizeof(FooterTail) == 24, "footer layout is the format");

/** Samples per chunk when the writer is not told otherwise. */
constexpr std::size_t kDefaultChunkSamples = std::size_t{1} << 16;

} // namespace emprof::store

#endif // EMPROF_STORE_EMCAP_FORMAT_HPP
