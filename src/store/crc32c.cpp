#include "store/crc32c.hpp"

#include <array>

namespace emprof::store {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u; // 0x1EDC6F41 reflected

struct Tables
{
    // tables[k][b]: CRC of byte b followed by k zero bytes.
    uint32_t t[8][256];

    constexpr Tables() : t{}
    {
        for (uint32_t b = 0; b < 256; ++b) {
            uint32_t crc = b;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
            t[0][b] = crc;
        }
        for (int k = 1; k < 8; ++k)
            for (uint32_t b = 0; b < 256; ++b)
                t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
    }
};

constexpr Tables kTables{};

} // namespace

uint32_t
crc32c(uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    crc = ~crc;

    // Head: byte-at-a-time until the slicing loop can take over.
    while (len != 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
        crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
        --len;
    }

    // Slicing-by-8: fold eight bytes per iteration.
    while (len >= 8) {
        const uint32_t lo = crc ^ (uint32_t(p[0]) | uint32_t(p[1]) << 8 |
                                   uint32_t(p[2]) << 16 |
                                   uint32_t(p[3]) << 24);
        crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
              kTables.t[5][(lo >> 16) & 0xFFu] ^
              kTables.t[4][(lo >> 24) & 0xFFu] ^ kTables.t[3][p[4]] ^
              kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
              kTables.t[0][p[7]];
        p += 8;
        len -= 8;
    }

    while (len != 0) {
        crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
        --len;
    }
    return ~crc;
}

} // namespace emprof::store
