/**
 * @file
 * Per-chunk sample codec: quantisation + delta/zig-zag/bit-packing.
 *
 * A chunk's samples are first mapped to an integer stream — the raw
 * float bit patterns for the lossless F32 codec, or round(x / scale)
 * for QuantI16 with a per-chunk scale — then compressed as the
 * zig-zagged deltas of that stream, bit-packed in miniblocks of 128
 * values at each miniblock's maximum width.  EM magnitude traces are a
 * busy plateau plus noise, so consecutive deltas are small and the
 * packed form typically lands at 1-2 bytes per sample (i16) against
 * 4 bytes of raw f32.  Whenever packing does not beat the verbatim
 * integer array (pathological inputs, tiny chunks), the encoder falls
 * back to raw passthrough — decode speed is then a memcpy and the
 * container never loses to the format it replaces by more than the
 * chunk header.
 *
 * Decoding is defensive: every read is bounds-checked against the
 * payload and the declared sample count, so a corrupted or hostile
 * payload yields `false`, never undefined behaviour (the fuzz test
 * leans on this under ASan/UBSan).
 */

#ifndef EMPROF_STORE_CHUNK_CODEC_HPP
#define EMPROF_STORE_CHUNK_CODEC_HPP

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"
#include "store/emcap_format.hpp"

namespace emprof::store {

/** Encoder knobs shared by the writer and the convert tool. */
struct EncoderOptions
{
    SampleCodec codec = SampleCodec::F32;

    /** Quantiser resolution (2..16) when codec == QuantI16. */
    unsigned quantBits = 16;

    /** false forces raw passthrough (still quantised for QuantI16). */
    bool compress = true;
};

/** One encoded chunk, ready to be framed by a ChunkHeader. */
struct EncodedChunk
{
    ChunkEncoding encoding = ChunkEncoding::Raw;
    float scale = 1.0f; ///< i16 dequantisation step (1.0 for F32)
    std::vector<uint8_t> payload;
};

/**
 * Encode @p count samples.  Never fails: the raw fallback always
 * applies.  For QuantI16 the scale is chosen per chunk as
 * maxAbs / (2^(quantBits-1) - 1) so the full quantiser range is used.
 */
EncodedChunk encodeChunk(const dsp::Sample *samples, std::size_t count,
                         const EncoderOptions &options);

/**
 * Decode a chunk payload into exactly @p count samples at @p out.
 *
 * @retval false Malformed payload (wrong size, impossible bit width,
 *         truncated miniblock); @p out contents are unspecified.
 */
bool decodeChunk(const uint8_t *payload, std::size_t payloadBytes,
                 ChunkEncoding encoding, SampleCodec codec, float scale,
                 std::size_t count, dsp::Sample *out);

/**
 * Quantise one sample the way the encoder does — exposed so tests can
 * assert the round-trip error bound (|x - q*scale| <= scale/2).
 */
int32_t quantize(dsp::Sample x, float scale, unsigned bits);

} // namespace emprof::store

#endif // EMPROF_STORE_CHUNK_CODEC_HPP
