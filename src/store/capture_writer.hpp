/**
 * @file
 * Streaming EMCAP writer.
 *
 * Buffers at most one chunk of samples (bounded memory no matter how
 * long the capture runs — emprof_capture streams into it as the probe
 * chain produces magnitude), encodes and CRCs each full chunk to disk,
 * and on finalize() appends the footer index, back-patches the header
 * with the final sample count, and fsyncs before close so a reported
 * success is durable.  The footer index grows by 24 bytes per chunk,
 * i.e. ~1.5 KB per GB of f32 payload.
 *
 * All I/O goes through common::io::CheckedFile: any failure — disk
 * full, torn write, short write — invalidates the writer immediately
 * and is preserved as a typed IoError in lastError().  A chunk whose
 * header landed but whose payload did not can therefore never desync
 * the footer index from the real file contents: nothing further is
 * written after the first failure, and finalize() reports it.  The
 * bytes already flushed remain salvageable via
 * CaptureReader::openRecovered.
 */

#ifndef EMPROF_STORE_CAPTURE_WRITER_HPP
#define EMPROF_STORE_CAPTURE_WRITER_HPP

#include <string>
#include <vector>

#include "common/io/checked_file.hpp"
#include "dsp/types.hpp"
#include "store/chunk_codec.hpp"
#include "store/emcap_format.hpp"

namespace emprof::store {

/** Everything the writer needs to know up front. */
struct WriterOptions
{
    double sampleRateHz = 0.0;
    double clockHz = 0.0;

    /** Capture source label (truncated to 23 chars in the header). */
    std::string deviceName;

    SampleCodec codec = SampleCodec::F32;
    unsigned quantBits = 16; ///< used when codec == QuantI16
    bool compress = true;
    std::size_t chunkSamples = kDefaultChunkSamples;
};

/** Size accounting, valid after finalize(). */
struct WriterStats
{
    uint64_t samples = 0;
    uint64_t chunks = 0;
    uint64_t fileBytes = 0;

    /** File-size ratio against the raw-f32 dump it replaces. */
    double
    compressionRatio() const
    {
        return fileBytes == 0
                   ? 0.0
                   : static_cast<double>(samples) * 4.0 /
                         static_cast<double>(fileBytes);
    }
};

class CaptureWriter
{
  public:
    CaptureWriter() = default;
    ~CaptureWriter() = default; // abandoned without finalize(): no footer

    CaptureWriter(const CaptureWriter &) = delete;
    CaptureWriter &operator=(const CaptureWriter &) = delete;

    /**
     * Create @p path and write a provisional header.
     *
     * @retval false The file could not be created (lastError() has the
     *         typed reason), or the options are unusable (quantBits
     *         outside 2..16, chunkSamples 0).
     */
    bool open(const std::string &path, const WriterOptions &options);

    /**
     * Append samples; full chunks are encoded and written.
     *
     * @retval false A write failed (see lastError()).  The writer is
     *         invalidated: every further append/finalize fails and the
     *         first error is preserved.
     */
    bool append(const dsp::Sample *samples, std::size_t count);

    /** Convenience for in-memory series. */
    bool
    append(const dsp::TimeSeries &series)
    {
        return append(series.samples.data(), series.samples.size());
    }

    /**
     * Flush the partial chunk, write the footer, patch the header, and
     * fsync.  The writer is closed afterwards; stats() stays valid.
     *
     * @retval false Some write, sync, or close failed; lastError()
     *         says which and where.  The on-disk file then holds only
     *         whatever chunks were fully flushed (recoverable), and no
     *         footer claims otherwise.
     */
    bool finalize();

    bool
    isOpen() const
    {
        return file_.isOpen() && !failed_;
    }

    const WriterStats &stats() const { return stats_; }

    /** First I/O (or option-validation) failure; None while healthy. */
    const common::io::IoError &lastError() const { return error_; }

  private:
    bool flushChunk();
    bool failWithFileError();

    common::io::CheckedFile file_;
    bool failed_ = false;
    common::io::IoError error_;
    WriterOptions options_;
    std::vector<dsp::Sample> buffer_;
    std::vector<ChunkIndexEntry> index_;
    WriterStats stats_;
};

/**
 * One-shot convenience: open + append + finalize.
 *
 * @param error Receives lastError().describe() on failure.
 */
bool writeCapture(const std::string &path,
                  const dsp::TimeSeries &series, WriterOptions options,
                  WriterStats *stats = nullptr,
                  std::string *error = nullptr);

} // namespace emprof::store

#endif // EMPROF_STORE_CAPTURE_WRITER_HPP
