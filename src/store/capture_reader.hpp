/**
 * @file
 * Random-access EMCAP reader.
 *
 * open() validates the header and the footer index (magic, version,
 * CRC32C, chunk-table consistency) without touching any payload, so
 * opening a multi-GB capture is O(chunks), not O(samples).  Chunks are
 * then decoded on demand:
 *
 *  - decodeChunk() checks the chunk's CRC and decodes it — it is
 *    `const` and uses positioned reads (pread), so any number of
 *    threads may decode different chunks of one reader concurrently;
 *    this is what lets ParallelAnalyzer overlap decode with analysis.
 *  - readRange() seeks straight to the covering chunks via the footer
 *    index: O(1) per lookup plus one decode per touched chunk.
 *  - verify() walks every byte of the file against its CRC and reports
 *    which chunks are damaged — a capture with one flipped bit loses
 *    one chunk, not the corpus.
 */

#ifndef EMPROF_STORE_CAPTURE_READER_HPP
#define EMPROF_STORE_CAPTURE_READER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/types.hpp"
#include "store/emcap_format.hpp"

namespace emprof::store {

/** Decoded file-header metadata. */
struct CaptureInfo
{
    uint32_t version = 0;
    SampleCodec codec = SampleCodec::F32;
    unsigned quantBits = 0;
    double sampleRateHz = 0.0;
    double clockHz = 0.0;
    std::string deviceName;
    uint64_t totalSamples = 0;
};

class CaptureReader
{
  public:
    CaptureReader() = default;
    ~CaptureReader();

    CaptureReader(const CaptureReader &) = delete;
    CaptureReader &operator=(const CaptureReader &) = delete;

    /**
     * Open and validate header + footer.
     *
     * @param error Receives a one-line reason on failure.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    void close();

    bool isOpen() const { return fd_ >= 0; }

    const CaptureInfo &info() const { return info_; }

    std::size_t chunkCount() const { return index_.size(); }

    const ChunkIndexEntry &chunk(std::size_t i) const
    {
        return index_[i];
    }

    /** Index of the chunk containing global sample @p sample. */
    std::size_t chunkContaining(uint64_t sample) const;

    /**
     * CRC-check and decode chunk @p i into @p out (resized to the
     * chunk's sample count).  Thread-safe.
     */
    bool decodeChunk(std::size_t i, std::vector<dsp::Sample> &out,
                     std::string *error = nullptr) const;

    /**
     * Decode exactly samples [first, first + count) into @p out.
     * Thread-safe.  Fails if the range exceeds the capture or any
     * covering chunk is corrupt.
     */
    bool readRange(uint64_t first, uint64_t count,
                   std::vector<dsp::Sample> &out,
                   std::string *error = nullptr) const;

    /** Whole capture as a TimeSeries (sample rate attached). */
    bool readAll(dsp::TimeSeries &out,
                 std::string *error = nullptr) const;

    /** Outcome of a full-file integrity walk. */
    struct VerifyResult
    {
        bool ok = false;
        std::size_t chunksChecked = 0;
        std::vector<std::size_t> badChunks;
        std::string error; ///< non-chunk failure (header/footer/...)
    };

    /** Re-check every CRC in the file, payloads included. */
    VerifyResult verify() const;

    /** Cheap magic probe: does @p path start with an EMCAP header? */
    static bool isEmcap(const std::string &path);

  private:
    bool fail(std::string *error, const std::string &message) const;

    /** Positioned read at @p offset; thread-safe. */
    bool preadAt(uint64_t offset, void *buf, std::size_t len) const;

    int fd_ = -1;
    std::string path_;
    uint64_t fileSize_ = 0;
    CaptureInfo info_;
    std::vector<ChunkIndexEntry> index_;
};

} // namespace emprof::store

#endif // EMPROF_STORE_CAPTURE_READER_HPP
