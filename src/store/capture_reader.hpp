/**
 * @file
 * Random-access EMCAP reader.
 *
 * open() validates the header and the footer index (magic, version,
 * CRC32C, chunk-table consistency) without touching any payload, so
 * opening a multi-GB capture is O(chunks), not O(samples).  Chunks are
 * then decoded on demand:
 *
 *  - decodeChunk() checks the chunk's CRC and decodes it — it is
 *    `const` and uses positioned reads (pread), so any number of
 *    threads may decode different chunks of one reader concurrently;
 *    this is what lets ParallelAnalyzer overlap decode with analysis.
 *  - readRange() seeks straight to the covering chunks via the footer
 *    index: O(1) per lookup plus one decode per touched chunk.
 *  - verify() walks every byte of the file against its CRC and reports
 *    which chunks are damaged — a capture with one flipped bit loses
 *    one chunk, not the corpus.
 *
 * A capture interrupted before finalize() has no footer; openRecovered()
 * rebuilds the index by scanning the per-chunk headers and CRCs from
 * the front of the file, salvaging every fully-flushed chunk (see
 * DESIGN.md §10, "Failure model & recovery").  All I/O runs through
 * common::io::CheckedFile, so every failure surfaces as a typed
 * IoError-derived message rather than a silent short read.
 */

#ifndef EMPROF_STORE_CAPTURE_READER_HPP
#define EMPROF_STORE_CAPTURE_READER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/io/checked_file.hpp"
#include "dsp/types.hpp"
#include "store/emcap_format.hpp"

namespace emprof::store {

/** Decoded file-header metadata. */
struct CaptureInfo
{
    uint32_t version = 0;
    SampleCodec codec = SampleCodec::F32;
    unsigned quantBits = 0;
    double sampleRateHz = 0.0;
    double clockHz = 0.0;
    std::string deviceName;
    uint64_t totalSamples = 0;
};

/** What openRecovered() managed to salvage. */
struct RecoveryReport
{
    uint64_t salvagedChunks = 0;
    uint64_t salvagedSamples = 0;

    /** File prefix (header + salvaged chunks) proven intact, bytes. */
    uint64_t salvagedBytes = 0;

    /** Trailing bytes abandoned (torn chunk, corruption, footer...). */
    uint64_t droppedTailBytes = 0;

    /** Why the scan stopped where it did (empty if it consumed the
     *  whole file, i.e. the capture had no footer at all). */
    std::string stopReason;
};

class CaptureReader
{
  public:
    CaptureReader() = default;
    ~CaptureReader();

    CaptureReader(const CaptureReader &) = delete;
    CaptureReader &operator=(const CaptureReader &) = delete;

    /**
     * Open and validate header + footer.
     *
     * @param error Receives a one-line reason on failure.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /**
     * Open a damaged or truncated capture by rebuilding the chunk
     * index from the per-chunk headers and CRCs, ignoring the footer
     * entirely.  Salvages the longest prefix of fully-flushed,
     * CRC-valid chunks; info().totalSamples reflects the salvaged
     * count, and every reader operation then works on the salvaged
     * prefix exactly as if it had been a finalized capture.
     *
     * Requires an intact 72-byte file header (it is written first and
     * never moves, so any capture that produced at least one byte of
     * chunk data has one).
     *
     * @retval false Nothing recoverable: the file is missing, shorter
     *         than a header, or the header itself is damaged.
     */
    bool openRecovered(const std::string &path,
                       RecoveryReport *report = nullptr,
                       std::string *error = nullptr);

    void close();

    bool isOpen() const { return file_.isOpen(); }

    const CaptureInfo &info() const { return info_; }

    std::size_t chunkCount() const { return index_.size(); }

    const ChunkIndexEntry &chunk(std::size_t i) const
    {
        return index_[i];
    }

    /** Index of the chunk containing global sample @p sample. */
    std::size_t chunkContaining(uint64_t sample) const;

    /**
     * CRC-check and decode chunk @p i into @p out (resized to the
     * chunk's sample count).  Thread-safe.
     */
    bool decodeChunk(std::size_t i, std::vector<dsp::Sample> &out,
                     std::string *error = nullptr) const;

    /**
     * Decode exactly samples [first, first + count) into @p out.
     * Thread-safe.  Fails if the range exceeds the capture or any
     * covering chunk is corrupt.
     */
    bool readRange(uint64_t first, uint64_t count,
                   std::vector<dsp::Sample> &out,
                   std::string *error = nullptr) const;

    /** Whole capture as a TimeSeries (sample rate attached). */
    bool readAll(dsp::TimeSeries &out,
                 std::string *error = nullptr) const;

    /** Outcome of a full-file integrity walk. */
    struct VerifyResult
    {
        bool ok = false;
        std::size_t chunksChecked = 0;
        std::vector<std::size_t> badChunks;
        std::string error; ///< non-chunk failure (header/footer/...)
    };

    /** Re-check every CRC in the file, payloads included. */
    VerifyResult verify() const;

    /** Cheap magic probe: does @p path start with an EMCAP header? */
    static bool isEmcap(const std::string &path);

  private:
    bool fail(std::string *error, const std::string &message) const;

    /** Read + fully validate the 72-byte file header. */
    bool loadHeader(FileHeader &header, std::string *error);

    /** Positioned read at @p offset; thread-safe. */
    bool preadAt(uint64_t offset, void *buf, std::size_t len,
                 const char *context, std::string *error) const;

    common::io::CheckedFile file_;
    uint64_t fileSize_ = 0;
    CaptureInfo info_;
    std::vector<ChunkIndexEntry> index_;
};

} // namespace emprof::store

#endif // EMPROF_STORE_CAPTURE_READER_HPP
