#include "store/capture_writer.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "store/crc32c.hpp"

namespace emprof::store {

namespace {

FileHeader
makeHeader(const WriterOptions &options, uint64_t total_samples)
{
    FileHeader header{};
    std::memcpy(header.magic, kEmcapMagic, sizeof(kEmcapMagic));
    header.version = kEmcapVersion;
    header.codec = static_cast<uint32_t>(options.codec);
    header.quantBits =
        options.codec == SampleCodec::QuantI16 ? options.quantBits : 0;
    header.sampleRateHz = options.sampleRateHz;
    header.clockHz = options.clockHz;
    header.totalSamples = total_samples;
    std::strncpy(header.deviceName, options.deviceName.c_str(),
                 sizeof(header.deviceName) - 1);
    header.headerCrc =
        crc32c(0, &header, offsetof(FileHeader, headerCrc));
    return header;
}

} // namespace

CaptureWriter::~CaptureWriter()
{
    if (file_ != nullptr)
        std::fclose(file_); // abandoned without finalize(): no footer
}

bool
CaptureWriter::open(const std::string &path, const WriterOptions &options)
{
    if (file_ != nullptr || options.chunkSamples == 0)
        return false;
    if (options.codec == SampleCodec::QuantI16 &&
        (options.quantBits < 2 || options.quantBits > 16))
        return false;
    if (options.codec != SampleCodec::F32 &&
        options.codec != SampleCodec::QuantI16)
        return false;

    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        return false;

    options_ = options;
    buffer_.clear();
    buffer_.reserve(options.chunkSamples);
    index_.clear();
    stats_ = WriterStats{};

    // Provisional header; finalize() rewrites it with the true sample
    // count (and therefore the true CRC).
    const FileHeader header = makeHeader(options_, 0);
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        return false;
    }
    offset_ = sizeof(FileHeader);
    return true;
}

bool
CaptureWriter::append(const dsp::Sample *samples, std::size_t count)
{
    if (file_ == nullptr)
        return false;
    while (count > 0) {
        const std::size_t take = std::min(
            count, options_.chunkSamples - buffer_.size());
        buffer_.insert(buffer_.end(), samples, samples + take);
        samples += take;
        count -= take;
        if (buffer_.size() == options_.chunkSamples && !flushChunk())
            return false;
    }
    return true;
}

bool
CaptureWriter::flushChunk()
{
    if (buffer_.empty())
        return true;

    EncoderOptions enc;
    enc.codec = options_.codec;
    enc.quantBits = options_.quantBits;
    enc.compress = options_.compress;
    const EncodedChunk chunk =
        encodeChunk(buffer_.data(), buffer_.size(), enc);

    ChunkHeader header{};
    header.encoding = static_cast<uint32_t>(chunk.encoding);
    header.sampleCount = static_cast<uint32_t>(buffer_.size());
    header.payloadBytes = static_cast<uint32_t>(chunk.payload.size());
    header.scale = chunk.scale;
    uint32_t crc = crc32c(0, &header, offsetof(ChunkHeader, crc));
    crc = crc32c(crc, chunk.payload.data(), chunk.payload.size());
    header.crc = crc;

    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        return false;
    if (!chunk.payload.empty() &&
        std::fwrite(chunk.payload.data(), 1, chunk.payload.size(),
                    file_) != chunk.payload.size()) {
        return false;
    }

    ChunkIndexEntry entry{};
    entry.fileOffset = offset_;
    entry.firstSample = stats_.samples;
    entry.sampleCount = header.sampleCount;
    entry.storedBytes = static_cast<uint32_t>(sizeof(ChunkHeader) +
                                              chunk.payload.size());
    index_.push_back(entry);

    offset_ += entry.storedBytes;
    stats_.samples += buffer_.size();
    ++stats_.chunks;
    buffer_.clear();
    return true;
}

bool
CaptureWriter::finalize()
{
    if (file_ == nullptr)
        return false;
    bool ok = flushChunk();

    FooterTail tail{};
    tail.chunkCount = index_.size();
    tail.totalSamples = stats_.samples;
    uint32_t crc = crc32c(0, index_.data(),
                          index_.size() * sizeof(ChunkIndexEntry));
    crc = crc32c(crc, &tail, offsetof(FooterTail, footerCrc));
    tail.footerCrc = crc;
    std::memcpy(tail.magic, kFooterMagic, sizeof(kFooterMagic));

    ok = ok && (index_.empty() ||
                std::fwrite(index_.data(), sizeof(ChunkIndexEntry),
                            index_.size(),
                            file_) == index_.size());
    ok = ok && std::fwrite(&tail, sizeof(tail), 1, file_) == 1;

    const FileHeader header = makeHeader(options_, stats_.samples);
    ok = ok && std::fseek(file_, 0, SEEK_SET) == 0 &&
         std::fwrite(&header, sizeof(header), 1, file_) == 1;

    ok = std::fclose(file_) == 0 && ok;
    file_ = nullptr;

    stats_.fileBytes = offset_ +
                       index_.size() * sizeof(ChunkIndexEntry) +
                       sizeof(FooterTail);
    return ok;
}

bool
writeCapture(const std::string &path, const dsp::TimeSeries &series,
             WriterOptions options, WriterStats *stats)
{
    if (options.sampleRateHz <= 0.0)
        options.sampleRateHz = series.sampleRateHz;
    CaptureWriter writer;
    const bool ok = writer.open(path, options) &&
                    writer.append(series) && writer.finalize();
    if (stats != nullptr)
        *stats = writer.stats();
    return ok;
}

} // namespace emprof::store
