#include "store/capture_writer.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "store/crc32c.hpp"

namespace emprof::store {

namespace {

FileHeader
makeHeader(const WriterOptions &options, uint64_t total_samples)
{
    FileHeader header{};
    std::memcpy(header.magic, kEmcapMagic, sizeof(kEmcapMagic));
    header.version = kEmcapVersion;
    header.codec = static_cast<uint32_t>(options.codec);
    header.quantBits =
        options.codec == SampleCodec::QuantI16 ? options.quantBits : 0;
    header.sampleRateHz = options.sampleRateHz;
    header.clockHz = options.clockHz;
    header.totalSamples = total_samples;
    std::strncpy(header.deviceName, options.deviceName.c_str(),
                 sizeof(header.deviceName) - 1);
    header.headerCrc =
        crc32c(0, &header, offsetof(FileHeader, headerCrc));
    return header;
}

} // namespace

bool
CaptureWriter::failWithFileError()
{
    failed_ = true;
    if (error_.ok())
        error_ = file_.error();
    return false;
}

bool
CaptureWriter::open(const std::string &path, const WriterOptions &options)
{
    if (file_.isOpen())
        return false;
    failed_ = false;
    error_ = common::io::IoError{};
    if (options.chunkSamples == 0 ||
        (options.codec == SampleCodec::QuantI16 &&
         (options.quantBits < 2 || options.quantBits > 16)) ||
        (options.codec != SampleCodec::F32 &&
         options.codec != SampleCodec::QuantI16)) {
        error_ = common::io::formatError(path, "unusable writer options");
        return false;
    }

    if (!file_.open(path,
                    common::io::CheckedFile::Mode::ReadWriteTruncate)) {
        error_ = file_.error();
        return false;
    }

    options_ = options;
    buffer_.clear();
    buffer_.reserve(options.chunkSamples);
    index_.clear();
    stats_ = WriterStats{};

    // Provisional header; finalize() rewrites it with the true sample
    // count (and therefore the true CRC).
    const FileHeader header = makeHeader(options_, 0);
    if (!file_.writeAll(&header, sizeof(header), "file header")) {
        error_ = file_.error();
        file_.close();
        return false;
    }
    return true;
}

bool
CaptureWriter::append(const dsp::Sample *samples, std::size_t count)
{
    if (!isOpen())
        return false;
    while (count > 0) {
        const std::size_t take = std::min(
            count, options_.chunkSamples - buffer_.size());
        buffer_.insert(buffer_.end(), samples, samples + take);
        samples += take;
        count -= take;
        if (buffer_.size() == options_.chunkSamples && !flushChunk())
            return false;
    }
    return true;
}

bool
CaptureWriter::flushChunk()
{
    if (buffer_.empty())
        return true;
    EMPROF_OBS_STAGE("store.encode_chunk");

    EncoderOptions enc;
    enc.codec = options_.codec;
    enc.quantBits = options_.quantBits;
    enc.compress = options_.compress;
    const EncodedChunk chunk =
        encodeChunk(buffer_.data(), buffer_.size(), enc);

    ChunkHeader header{};
    header.encoding = static_cast<uint32_t>(chunk.encoding);
    header.sampleCount = static_cast<uint32_t>(buffer_.size());
    header.payloadBytes = static_cast<uint32_t>(chunk.payload.size());
    header.scale = chunk.scale;
    uint32_t crc = crc32c(0, &header, offsetof(ChunkHeader, crc));
    crc = crc32c(crc, chunk.payload.data(), chunk.payload.size());
    header.crc = crc;

    // The index entry records where the chunk actually starts; taking
    // the offset from the checked file (rather than a parallel counter)
    // makes a header-landed/payload-failed desync impossible — after
    // any failed write the writer is invalid and nothing more lands.
    ChunkIndexEntry entry{};
    entry.fileOffset = file_.offset();
    entry.firstSample = stats_.samples;
    entry.sampleCount = header.sampleCount;
    entry.storedBytes = static_cast<uint32_t>(sizeof(ChunkHeader) +
                                              chunk.payload.size());

    if (!file_.writeAll(&header, sizeof(header), "chunk header"))
        return failWithFileError();
    if (!chunk.payload.empty() &&
        !file_.writeAll(chunk.payload.data(), chunk.payload.size(),
                        "chunk payload"))
        return failWithFileError();

    index_.push_back(entry);
    stats_.samples += buffer_.size();
    ++stats_.chunks;
    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        static const obs::Counter chunks =
            registry.counter("store.write.chunks_encoded");
        static const obs::Counter samples =
            registry.counter("store.write.samples");
        static const obs::Counter bytes =
            registry.counter("store.write.bytes");
        chunks.inc();
        samples.add(buffer_.size());
        bytes.add(entry.storedBytes);
    }
    buffer_.clear();
    return true;
}

bool
CaptureWriter::finalize()
{
    EMPROF_OBS_STAGE("store.finalize");
    if (!file_.isOpen())
        return false;
    if (failed_ || !flushChunk()) {
        file_.close();
        return false;
    }

    FooterTail tail{};
    tail.chunkCount = index_.size();
    tail.totalSamples = stats_.samples;
    uint32_t crc = crc32c(0, index_.data(),
                          index_.size() * sizeof(ChunkIndexEntry));
    crc = crc32c(crc, &tail, offsetof(FooterTail, footerCrc));
    tail.footerCrc = crc;
    std::memcpy(tail.magic, kFooterMagic, sizeof(kFooterMagic));

    const FileHeader header = makeHeader(options_, stats_.samples);

    bool ok =
        (index_.empty() ||
         file_.writeAll(index_.data(),
                        index_.size() * sizeof(ChunkIndexEntry),
                        "footer index")) &&
        file_.writeAll(&tail, sizeof(tail), "footer tail");
    if (ok)
        stats_.fileBytes = file_.offset();
    ok = ok && file_.seekTo(0, "header back-patch") &&
         file_.writeAll(&header, sizeof(header), "header back-patch") &&
         file_.syncToDisk("finalize fsync");

    // close() reports both a pending error and a failing close(2);
    // order matters so a clean close cannot mask a failed write.
    ok = file_.close() && ok;
    if (!ok)
        return failWithFileError();
    return true;
}

bool
writeCapture(const std::string &path, const dsp::TimeSeries &series,
             WriterOptions options, WriterStats *stats,
             std::string *error)
{
    if (options.sampleRateHz <= 0.0)
        options.sampleRateHz = series.sampleRateHz;
    CaptureWriter writer;
    const bool ok = writer.open(path, options) &&
                    writer.append(series) && writer.finalize();
    if (stats != nullptr)
        *stats = writer.stats();
    if (!ok && error != nullptr)
        *error = writer.lastError().describe();
    return ok;
}

} // namespace emprof::store
