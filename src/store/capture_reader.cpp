#include "store/capture_reader.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#include "store/chunk_codec.hpp"
#include "store/crc32c.hpp"

namespace emprof::store {

namespace {

void
countCrcFailure()
{
    if (!obs::MetricsRegistry::enabled())
        return;
    static const obs::Counter failures =
        obs::MetricsRegistry::instance().counter(
            "store.read.crc_failures");
    failures.inc();
}

} // namespace

bool
CaptureReader::preadAt(uint64_t offset, void *buf, std::size_t len,
                       const char *context, std::string *error) const
{
    common::io::IoError e;
    if (file_.preadAt(offset, buf, len, context, &e))
        return true;
    return fail(error, e.describe());
}

CaptureReader::~CaptureReader() { close(); }

void
CaptureReader::close()
{
    file_.reset();
    index_.clear();
    info_ = CaptureInfo{};
    fileSize_ = 0;
}

bool
CaptureReader::fail(std::string *error, const std::string &message) const
{
    if (error != nullptr)
        *error = message;
    return false;
}

bool
CaptureReader::loadHeader(FileHeader &header, std::string *error)
{
    if (!preadAt(0, &header, sizeof(header), "file header", error))
        return false;
    if (std::memcmp(header.magic, kEmcapMagic, sizeof(kEmcapMagic)) != 0)
        return fail(error, "bad magic: not an EMCAP file");
    if (header.version != kEmcapVersion)
        return fail(error, "unsupported EMCAP version");
    if (crc32c(0, &header, offsetof(FileHeader, headerCrc)) !=
        header.headerCrc)
        return fail(error, "file header CRC mismatch");
    if (header.codec != static_cast<uint32_t>(SampleCodec::F32) &&
        header.codec != static_cast<uint32_t>(SampleCodec::QuantI16))
        return fail(error, "unknown sample codec");
    return true;
}

bool
CaptureReader::open(const std::string &path, std::string *error)
{
    close();
    if (!file_.open(path, common::io::CheckedFile::Mode::Read)) {
        const std::string why = file_.error().describe();
        close();
        return fail(error, "cannot open " + path + ": " + why);
    }

    const auto bail = [&](const std::string &message) {
        close();
        return fail(error, message);
    };

    if (!file_.size(fileSize_, "stat"))
        return bail("cannot stat " + path);
    if (fileSize_ < sizeof(FileHeader) + sizeof(FooterTail))
        return bail("file too short to be an EMCAP capture");

    FileHeader header{};
    std::string header_error;
    if (!loadHeader(header, &header_error))
        return bail(header_error);

    FooterTail tail{};
    if (!preadAt(fileSize_ - sizeof(tail), &tail, sizeof(tail),
                 "footer tail", error)) {
        close();
        return false;
    }
    if (std::memcmp(tail.magic, kFooterMagic, sizeof(kFooterMagic)) != 0)
        return bail("bad footer magic (truncated file? try recovery)");

    // Each chunk needs >= 20 bytes of body plus its 24-byte index
    // entry, which bounds the plausible chunk count before we allocate.
    const uint64_t non_chunk_bytes =
        sizeof(FileHeader) + sizeof(FooterTail);
    if (tail.chunkCount >
        (fileSize_ - non_chunk_bytes) /
            (sizeof(ChunkHeader) + sizeof(ChunkIndexEntry)))
        return bail("footer chunk count impossible for file size");

    const uint64_t index_bytes =
        tail.chunkCount * sizeof(ChunkIndexEntry);
    const uint64_t footer_start =
        fileSize_ - sizeof(FooterTail) - index_bytes;

    index_.resize(static_cast<std::size_t>(tail.chunkCount));
    if (index_bytes != 0 &&
        !preadAt(footer_start, index_.data(), index_bytes,
                 "footer index", error)) {
        close();
        return false;
    }

    uint32_t crc = crc32c(0, index_.data(), index_bytes);
    crc = crc32c(crc, &tail, offsetof(FooterTail, footerCrc));
    if (crc != tail.footerCrc)
        return bail("footer CRC mismatch");
    if (tail.totalSamples != header.totalSamples)
        return bail("header/footer sample counts disagree");

    // The chunk stream must tile [header, footer) exactly.
    uint64_t offset = sizeof(FileHeader);
    uint64_t samples = 0;
    for (const auto &entry : index_) {
        if (entry.fileOffset != offset ||
            entry.firstSample != samples ||
            entry.sampleCount == 0 ||
            entry.storedBytes < sizeof(ChunkHeader))
            return bail("footer index inconsistent");
        offset += entry.storedBytes;
        samples += entry.sampleCount;
    }
    if (offset != footer_start || samples != tail.totalSamples)
        return bail("chunks do not tile the file");

    info_.version = header.version;
    info_.codec = static_cast<SampleCodec>(header.codec);
    info_.quantBits = header.quantBits;
    info_.sampleRateHz = header.sampleRateHz;
    info_.clockHz = header.clockHz;
    info_.deviceName.assign(
        header.deviceName,
        ::strnlen(header.deviceName, sizeof(header.deviceName)));
    info_.totalSamples = header.totalSamples;
    // Device names are user input: the JSON export escapes them, which
    // is exactly what the obs escaping tests pin down.
    obs::MetricsRegistry::instance().setLabel("store.device",
                                              info_.deviceName);
    return true;
}

bool
CaptureReader::openRecovered(const std::string &path,
                             RecoveryReport *report, std::string *error)
{
    EMPROF_OBS_STAGE("store.recover");
    close();
    if (!file_.open(path, common::io::CheckedFile::Mode::Read)) {
        const std::string why = file_.error().describe();
        close();
        return fail(error, "cannot open " + path + ": " + why);
    }

    const auto bail = [&](const std::string &message) {
        close();
        return fail(error, message + "; nothing recoverable");
    };

    if (!file_.size(fileSize_, "stat"))
        return bail("cannot stat " + path);

    // The 72-byte header is written first, before any chunk, and never
    // moves; without it there is no sample rate, codec or quantiser to
    // decode chunks with.
    if (fileSize_ < sizeof(FileHeader))
        return bail("file shorter than the EMCAP header");
    FileHeader header{};
    std::string header_error;
    if (!loadHeader(header, &header_error))
        return bail(header_error);

    // Walk the chunk stream from the front.  A chunk counts as
    // salvaged only if its full header + payload are present and the
    // CRC over both checks out; the first byte that fails ends the
    // salvageable prefix (it is a torn write, corruption, or the start
    // of a footer index).
    std::string stop_reason;
    std::vector<uint8_t> payload;
    uint64_t offset = sizeof(FileHeader);
    uint64_t samples = 0;
    while (offset < fileSize_) {
        if (fileSize_ - offset < sizeof(ChunkHeader)) {
            stop_reason = "truncated mid chunk header";
            break;
        }
        ChunkHeader chunk{};
        std::string io_error;
        if (!preadAt(offset, &chunk, sizeof(chunk), "chunk header",
                     &io_error)) {
            stop_reason = io_error;
            break;
        }
        if (chunk.sampleCount == 0) {
            stop_reason = "empty chunk (footer or torn write)";
            break;
        }
        if (chunk.payloadBytes >
            fileSize_ - offset - sizeof(ChunkHeader)) {
            stop_reason = "truncated mid chunk payload";
            break;
        }
        payload.resize(chunk.payloadBytes);
        if (!preadAt(offset + sizeof(ChunkHeader), payload.data(),
                     payload.size(), "chunk payload", &io_error)) {
            stop_reason = io_error;
            break;
        }
        uint32_t crc = crc32c(0, &chunk, offsetof(ChunkHeader, crc));
        crc = crc32c(crc, payload.data(), payload.size());
        if (crc != chunk.crc) {
            countCrcFailure();
            stop_reason = "chunk CRC mismatch (footer, torn write, or "
                          "corruption)";
            break;
        }

        ChunkIndexEntry entry{};
        entry.fileOffset = offset;
        entry.firstSample = samples;
        entry.sampleCount = chunk.sampleCount;
        entry.storedBytes = static_cast<uint32_t>(sizeof(ChunkHeader)) +
                            chunk.payloadBytes;
        index_.push_back(entry);
        samples += chunk.sampleCount;
        offset += entry.storedBytes;
    }

    info_.version = header.version;
    info_.codec = static_cast<SampleCodec>(header.codec);
    info_.quantBits = header.quantBits;
    info_.sampleRateHz = header.sampleRateHz;
    info_.clockHz = header.clockHz;
    info_.deviceName.assign(
        header.deviceName,
        ::strnlen(header.deviceName, sizeof(header.deviceName)));
    // The header's own count is untrustworthy here (a crashed capture
    // still carries the provisional 0); the scan is the truth.
    info_.totalSamples = samples;

    if (report != nullptr) {
        *report = RecoveryReport{};
        report->salvagedChunks = index_.size();
        report->salvagedSamples = samples;
        report->salvagedBytes = offset;
        report->droppedTailBytes = fileSize_ - offset;
        report->stopReason = stop_reason;
    }
    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        static const obs::Counter recoveries =
            registry.counter("store.recovery.opens");
        static const obs::Counter salvaged_chunks =
            registry.counter("store.recovery.salvaged_chunks");
        static const obs::Counter salvaged_samples =
            registry.counter("store.recovery.salvaged_samples");
        static const obs::Counter dropped_bytes =
            registry.counter("store.recovery.dropped_tail_bytes");
        recoveries.inc();
        salvaged_chunks.add(index_.size());
        salvaged_samples.add(samples);
        dropped_bytes.add(fileSize_ - offset);
    }
    return true;
}

std::size_t
CaptureReader::chunkContaining(uint64_t sample) const
{
    const auto it = std::upper_bound(
        index_.begin(), index_.end(), sample,
        [](uint64_t s, const ChunkIndexEntry &e) {
            return s < e.firstSample;
        });
    return it == index_.begin()
               ? 0
               : static_cast<std::size_t>(it - index_.begin() - 1);
}

bool
CaptureReader::decodeChunk(std::size_t i, std::vector<dsp::Sample> &out,
                           std::string *error) const
{
    EMPROF_OBS_STAGE("store.decode_chunk");
    if (!isOpen() || i >= index_.size())
        return fail(error, "chunk index out of range");
    const ChunkIndexEntry &entry = index_[i];

    std::vector<uint8_t> stored(entry.storedBytes);
    if (!preadAt(entry.fileOffset, stored.data(), stored.size(),
                 "chunk body", error))
        return false;

    ChunkHeader header{};
    std::memcpy(&header, stored.data(), sizeof(header));
    const uint8_t *payload = stored.data() + sizeof(header);
    const std::size_t payload_bytes = stored.size() - sizeof(header);

    if (header.sampleCount != entry.sampleCount ||
        header.payloadBytes != payload_bytes)
        return fail(error, "chunk " + std::to_string(i) +
                               " header disagrees with footer index");
    uint32_t crc = crc32c(0, &header, offsetof(ChunkHeader, crc));
    crc = crc32c(crc, payload, payload_bytes);
    if (crc != header.crc) {
        countCrcFailure();
        return fail(error,
                    "chunk " + std::to_string(i) + " CRC mismatch");
    }

    out.resize(entry.sampleCount);
    if (!store::decodeChunk(payload, payload_bytes,
                            static_cast<ChunkEncoding>(header.encoding),
                            info_.codec, header.scale, out.size(),
                            out.data()))
        return fail(error, "chunk " + std::to_string(i) +
                               " payload malformed");
    if (obs::MetricsRegistry::enabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        static const obs::Counter chunks =
            registry.counter("store.read.chunks_decoded");
        static const obs::Counter samples =
            registry.counter("store.read.samples");
        static const obs::Counter bytes =
            registry.counter("store.read.bytes");
        chunks.inc();
        samples.add(entry.sampleCount);
        bytes.add(entry.storedBytes);
    }
    return true;
}

bool
CaptureReader::readRange(uint64_t first, uint64_t count,
                         std::vector<dsp::Sample> &out,
                         std::string *error) const
{
    if (!isOpen())
        return fail(error, "reader not open");
    if (first + count < first || first + count > info_.totalSamples)
        return fail(error, "sample range exceeds capture");

    out.resize(static_cast<std::size_t>(count));
    if (count == 0)
        return true;

    std::vector<dsp::Sample> scratch;
    uint64_t cursor = first;
    std::size_t ci = chunkContaining(first);
    while (cursor < first + count) {
        const ChunkIndexEntry &entry = index_[ci];
        if (!decodeChunk(ci, scratch, error))
            return false;
        const uint64_t lo = cursor - entry.firstSample;
        const uint64_t hi = std::min<uint64_t>(
            entry.sampleCount, first + count - entry.firstSample);
        std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                  scratch.begin() + static_cast<std::ptrdiff_t>(hi),
                  out.begin() +
                      static_cast<std::ptrdiff_t>(cursor - first));
        cursor = entry.firstSample + hi;
        ++ci;
    }
    return true;
}

bool
CaptureReader::readAll(dsp::TimeSeries &out, std::string *error) const
{
    out.sampleRateHz = info_.sampleRateHz;
    return readRange(0, info_.totalSamples, out.samples, error);
}

CaptureReader::VerifyResult
CaptureReader::verify() const
{
    VerifyResult result;
    if (!isOpen()) {
        result.error = "reader not open";
        return result;
    }

    // open() already vetted header + footer; walk every payload too.
    std::vector<dsp::Sample> scratch;
    for (std::size_t i = 0; i < index_.size(); ++i) {
        ++result.chunksChecked;
        if (!decodeChunk(i, scratch))
            result.badChunks.push_back(i);
    }
    result.ok = result.badChunks.empty();
    return result;
}

bool
CaptureReader::isEmcap(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char magic[4] = {};
    const bool ok =
        std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
        std::memcmp(magic, kEmcapMagic, sizeof(magic)) == 0;
    std::fclose(f);
    return ok;
}

} // namespace emprof::store
