/**
 * @file
 * CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected).
 *
 * The EMCAP container checks every header, chunk, and footer with
 * CRC32C — the same polynomial iSCSI, btrfs, and ext4 use, chosen for
 * its better burst-error detection than CRC32 (IEEE) and because
 * hardware ISAs accelerate it (SSE4.2 crc32, ARMv8 CRC).  This is a
 * portable slicing-by-8 software implementation: one table lookup per
 * input byte lane, ~1 GB/s on commodity cores, no CPU feature
 * detection needed anywhere the tests run.
 */

#ifndef EMPROF_STORE_CRC32C_HPP
#define EMPROF_STORE_CRC32C_HPP

#include <cstddef>
#include <cstdint>

namespace emprof::store {

/**
 * Extend a running CRC32C over @p len bytes.
 *
 * @param crc Value returned by a previous call, or 0 to start.
 * @return The updated checksum (already post-inverted; feed it back in
 *         unchanged to continue over the next buffer).
 */
uint32_t crc32c(uint32_t crc, const void *data, std::size_t len);

} // namespace emprof::store

#endif // EMPROF_STORE_CRC32C_HPP
