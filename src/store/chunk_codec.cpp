#include "store/chunk_codec.hpp"

#include <algorithm>
#include <bit>
#include <cfloat>
#include <cmath>
#include <cstring>

namespace emprof::store {

namespace {

/** Deltas per bit-packed miniblock. */
constexpr std::size_t kMiniblock = 128;

/**
 * Widest legal packed value: f32 bit patterns delta in (-2^32, 2^32),
 * zig-zag < 2^33.  Anything wider in a payload is corruption.
 */
constexpr unsigned kMaxWidth = 40;

uint64_t
zigzag(int64_t d)
{
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

int64_t
unzigzag(uint64_t z)
{
    return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

/** Integer a chunk sample maps to before delta coding. */
int64_t
sampleToInt(dsp::Sample x, SampleCodec codec, float scale, unsigned bits)
{
    if (codec == SampleCodec::F32) {
        uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        return static_cast<int64_t>(u);
    }
    return quantize(x, scale, bits);
}

dsp::Sample
intToSample(int64_t v, SampleCodec codec, float scale)
{
    if (codec == SampleCodec::F32) {
        const auto u = static_cast<uint32_t>(v);
        float x;
        std::memcpy(&x, &u, sizeof(x));
        return x;
    }
    return static_cast<float>(v) * scale;
}

/** Is @p v a representable integer for @p codec?  (Decode guard.) */
bool
intInRange(int64_t v, SampleCodec codec)
{
    if (codec == SampleCodec::F32)
        return v >= 0 && v <= 0xFFFFFFFFll;
    return v >= -32768 && v <= 32767;
}

struct BitWriter
{
    std::vector<uint8_t> &out;
    uint64_t acc = 0;
    unsigned bits = 0;

    void
    put(uint64_t v, unsigned width)
    {
        if (width == 0)
            return;
        acc |= (v & (~uint64_t{0} >> (64 - width))) << bits;
        bits += width;
        while (bits >= 8) {
            out.push_back(static_cast<uint8_t>(acc));
            acc >>= 8;
            bits -= 8;
        }
    }

    void
    byteAlign()
    {
        if (bits != 0) {
            out.push_back(static_cast<uint8_t>(acc));
            acc = 0;
            bits = 0;
        }
    }
};

struct BitReader
{
    const uint8_t *p;
    const uint8_t *end;
    uint64_t acc = 0;
    unsigned bits = 0;

    bool
    get(unsigned width, uint64_t &v)
    {
        while (bits < width) {
            if (p == end)
                return false;
            acc |= static_cast<uint64_t>(*p++) << bits;
            bits += 8;
        }
        v = width == 0 ? 0 : acc & (~uint64_t{0} >> (64 - width));
        acc >>= width;
        bits -= width;
        return true;
    }

    void
    byteAlign()
    {
        acc = 0;
        bits = 0;
    }
};

} // namespace

int32_t
quantize(dsp::Sample x, float scale, unsigned bits)
{
    const auto qmax =
        static_cast<int32_t>((uint32_t{1} << (bits - 1)) - 1);
    if (!(scale > 0.0f) || !std::isfinite(x))
        return 0;
    const long q = std::lround(static_cast<double>(x) /
                               static_cast<double>(scale));
    if (q > qmax)
        return qmax;
    if (q < -qmax)
        return -qmax;
    return static_cast<int32_t>(q);
}

EncodedChunk
encodeChunk(const dsp::Sample *samples, std::size_t count,
            const EncoderOptions &options)
{
    EncodedChunk chunk;

    if (options.codec == SampleCodec::QuantI16) {
        float max_abs = 0.0f;
        for (std::size_t i = 0; i < count; ++i) {
            const float a = std::fabs(samples[i]);
            if (std::isfinite(a) && a > max_abs)
                max_abs = a;
        }
        const auto qmax = static_cast<float>(
            (uint32_t{1} << (options.quantBits - 1)) - 1);
        // Floor at the smallest normal float: an all-denormal chunk
        // would otherwise underflow the scale to 0, which quantize()
        // treats as invalid and the whole chunk would decode as zeros.
        chunk.scale = max_abs > 0.0f
                          ? std::max(max_abs / qmax, FLT_MIN)
                          : 1.0f;
    }

    if (count == 0)
        return chunk;

    // Integer stream, then zig-zagged deltas of it.
    std::vector<int64_t> values(count);
    for (std::size_t i = 0; i < count; ++i)
        values[i] = sampleToInt(samples[i], options.codec, chunk.scale,
                                options.quantBits);

    const std::size_t raw_bytes =
        count * (options.codec == SampleCodec::F32 ? 4 : 2);

    std::size_t packed_bytes = 0;
    std::vector<uint8_t> widths;
    if (options.compress) {
        packed_bytes = 8; // first value, stored verbatim
        for (std::size_t g = 1; g < count; g += kMiniblock) {
            const std::size_t n = std::min(kMiniblock, count - g);
            uint64_t worst = 0;
            for (std::size_t i = g; i < g + n; ++i)
                worst |= zigzag(values[i] - values[i - 1]);
            const auto width =
                static_cast<unsigned>(std::bit_width(worst));
            widths.push_back(static_cast<uint8_t>(width));
            packed_bytes += 1 + (n * width + 7) / 8;
        }
    }

    if (!options.compress || packed_bytes >= raw_bytes) {
        // Raw passthrough: verbatim little-endian integer array.
        chunk.encoding = ChunkEncoding::Raw;
        chunk.payload.resize(raw_bytes);
        if (options.codec == SampleCodec::F32) {
            std::memcpy(chunk.payload.data(), samples, raw_bytes);
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                const auto q = static_cast<int16_t>(values[i]);
                std::memcpy(chunk.payload.data() + 2 * i, &q, 2);
            }
        }
        return chunk;
    }

    chunk.encoding = ChunkEncoding::DeltaPacked;
    chunk.payload.reserve(packed_bytes);
    chunk.payload.resize(8);
    const auto first = static_cast<uint64_t>(values[0]);
    std::memcpy(chunk.payload.data(), &first, 8);

    BitWriter writer{chunk.payload};
    std::size_t block = 0;
    for (std::size_t g = 1; g < count; g += kMiniblock) {
        const std::size_t n = std::min(kMiniblock, count - g);
        const unsigned width = widths[block++];
        chunk.payload.push_back(static_cast<uint8_t>(width));
        for (std::size_t i = g; i < g + n; ++i)
            writer.put(zigzag(values[i] - values[i - 1]), width);
        writer.byteAlign();
    }
    return chunk;
}

bool
decodeChunk(const uint8_t *payload, std::size_t payloadBytes,
            ChunkEncoding encoding, SampleCodec codec, float scale,
            std::size_t count, dsp::Sample *out)
{
    if (codec != SampleCodec::F32 && codec != SampleCodec::QuantI16)
        return false;
    if (count == 0)
        return payloadBytes == 0;

    if (encoding == ChunkEncoding::Raw) {
        const std::size_t width = codec == SampleCodec::F32 ? 4 : 2;
        if (payloadBytes != count * width)
            return false;
        if (codec == SampleCodec::F32) {
            std::memcpy(out, payload, payloadBytes);
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                int16_t q;
                std::memcpy(&q, payload + 2 * i, 2);
                out[i] = static_cast<float>(q) * scale;
            }
        }
        return true;
    }

    if (encoding != ChunkEncoding::DeltaPacked || payloadBytes < 8)
        return false;

    uint64_t first;
    std::memcpy(&first, payload, 8);
    auto prev = static_cast<int64_t>(first);
    if (!intInRange(prev, codec))
        return false;
    out[0] = intToSample(prev, codec, scale);

    BitReader reader{payload + 8, payload + payloadBytes};
    for (std::size_t g = 1; g < count; g += kMiniblock) {
        const std::size_t n = std::min(kMiniblock, count - g);
        if (reader.p == reader.end)
            return false;
        const unsigned width = *reader.p++;
        if (width > kMaxWidth)
            return false;
        for (std::size_t i = g; i < g + n; ++i) {
            uint64_t z;
            if (!reader.get(width, z))
                return false;
            prev += unzigzag(z);
            if (!intInRange(prev, codec))
                return false;
            out[i] = intToSample(prev, codec, scale);
        }
        reader.byteAlign();
    }
    // The encoder emits exactly this many bytes; anything trailing is
    // corruption the CRC may have missed only in adversarial settings.
    return reader.p == reader.end;
}

} // namespace emprof::store
