# Empty compiler generated dependencies file for emprof_devices.
# This may be replaced when dependencies are built.
