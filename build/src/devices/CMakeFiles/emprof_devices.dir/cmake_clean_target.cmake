file(REMOVE_RECURSE
  "libemprof_devices.a"
)
