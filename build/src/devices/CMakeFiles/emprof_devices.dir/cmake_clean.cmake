file(REMOVE_RECURSE
  "CMakeFiles/emprof_devices.dir/devices.cpp.o"
  "CMakeFiles/emprof_devices.dir/devices.cpp.o.d"
  "libemprof_devices.a"
  "libemprof_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
