file(REMOVE_RECURSE
  "libemprof_workloads.a"
)
