
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/boot.cpp" "src/workloads/CMakeFiles/emprof_workloads.dir/boot.cpp.o" "gcc" "src/workloads/CMakeFiles/emprof_workloads.dir/boot.cpp.o.d"
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/emprof_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/emprof_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/microbenchmark.cpp" "src/workloads/CMakeFiles/emprof_workloads.dir/microbenchmark.cpp.o" "gcc" "src/workloads/CMakeFiles/emprof_workloads.dir/microbenchmark.cpp.o.d"
  "/root/repo/src/workloads/spec.cpp" "src/workloads/CMakeFiles/emprof_workloads.dir/spec.cpp.o" "gcc" "src/workloads/CMakeFiles/emprof_workloads.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/emprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
