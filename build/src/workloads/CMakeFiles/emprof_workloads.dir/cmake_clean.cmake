file(REMOVE_RECURSE
  "CMakeFiles/emprof_workloads.dir/boot.cpp.o"
  "CMakeFiles/emprof_workloads.dir/boot.cpp.o.d"
  "CMakeFiles/emprof_workloads.dir/common.cpp.o"
  "CMakeFiles/emprof_workloads.dir/common.cpp.o.d"
  "CMakeFiles/emprof_workloads.dir/microbenchmark.cpp.o"
  "CMakeFiles/emprof_workloads.dir/microbenchmark.cpp.o.d"
  "CMakeFiles/emprof_workloads.dir/spec.cpp.o"
  "CMakeFiles/emprof_workloads.dir/spec.cpp.o.d"
  "libemprof_workloads.a"
  "libemprof_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
