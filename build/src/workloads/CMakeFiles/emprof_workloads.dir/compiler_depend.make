# Empty compiler generated dependencies file for emprof_workloads.
# This may be replaced when dependencies are built.
