# Empty compiler generated dependencies file for emprof_em.
# This may be replaced when dependencies are built.
