
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/capture.cpp" "src/em/CMakeFiles/emprof_em.dir/capture.cpp.o" "gcc" "src/em/CMakeFiles/emprof_em.dir/capture.cpp.o.d"
  "/root/repo/src/em/channel.cpp" "src/em/CMakeFiles/emprof_em.dir/channel.cpp.o" "gcc" "src/em/CMakeFiles/emprof_em.dir/channel.cpp.o.d"
  "/root/repo/src/em/emanation.cpp" "src/em/CMakeFiles/emprof_em.dir/emanation.cpp.o" "gcc" "src/em/CMakeFiles/emprof_em.dir/emanation.cpp.o.d"
  "/root/repo/src/em/receiver.cpp" "src/em/CMakeFiles/emprof_em.dir/receiver.cpp.o" "gcc" "src/em/CMakeFiles/emprof_em.dir/receiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emprof_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
