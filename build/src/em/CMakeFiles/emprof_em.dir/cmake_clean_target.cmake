file(REMOVE_RECURSE
  "libemprof_em.a"
)
