file(REMOVE_RECURSE
  "CMakeFiles/emprof_em.dir/capture.cpp.o"
  "CMakeFiles/emprof_em.dir/capture.cpp.o.d"
  "CMakeFiles/emprof_em.dir/channel.cpp.o"
  "CMakeFiles/emprof_em.dir/channel.cpp.o.d"
  "CMakeFiles/emprof_em.dir/emanation.cpp.o"
  "CMakeFiles/emprof_em.dir/emanation.cpp.o.d"
  "CMakeFiles/emprof_em.dir/receiver.cpp.o"
  "CMakeFiles/emprof_em.dir/receiver.cpp.o.d"
  "libemprof_em.a"
  "libemprof_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
