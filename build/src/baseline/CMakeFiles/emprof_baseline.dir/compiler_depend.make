# Empty compiler generated dependencies file for emprof_baseline.
# This may be replaced when dependencies are built.
