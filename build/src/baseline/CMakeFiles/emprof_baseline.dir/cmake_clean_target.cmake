file(REMOVE_RECURSE
  "libemprof_baseline.a"
)
