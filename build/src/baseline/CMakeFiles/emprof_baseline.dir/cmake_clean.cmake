file(REMOVE_RECURSE
  "CMakeFiles/emprof_baseline.dir/perf_model.cpp.o"
  "CMakeFiles/emprof_baseline.dir/perf_model.cpp.o.d"
  "libemprof_baseline.a"
  "libemprof_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
