file(REMOVE_RECURSE
  "libemprof_profiler.a"
)
