# Empty dependencies file for emprof_profiler.
# This may be replaced when dependencies are built.
