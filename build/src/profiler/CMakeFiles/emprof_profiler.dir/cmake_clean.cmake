file(REMOVE_RECURSE
  "CMakeFiles/emprof_profiler.dir/attribution.cpp.o"
  "CMakeFiles/emprof_profiler.dir/attribution.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/boot_profile.cpp.o"
  "CMakeFiles/emprof_profiler.dir/boot_profile.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/dip_detector.cpp.o"
  "CMakeFiles/emprof_profiler.dir/dip_detector.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/marker.cpp.o"
  "CMakeFiles/emprof_profiler.dir/marker.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/naive_threshold.cpp.o"
  "CMakeFiles/emprof_profiler.dir/naive_threshold.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/normalizer.cpp.o"
  "CMakeFiles/emprof_profiler.dir/normalizer.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/profiler.cpp.o"
  "CMakeFiles/emprof_profiler.dir/profiler.cpp.o.d"
  "CMakeFiles/emprof_profiler.dir/report.cpp.o"
  "CMakeFiles/emprof_profiler.dir/report.cpp.o.d"
  "libemprof_profiler.a"
  "libemprof_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
