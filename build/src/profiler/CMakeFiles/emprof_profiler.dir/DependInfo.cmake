
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/attribution.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/attribution.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/attribution.cpp.o.d"
  "/root/repo/src/profiler/boot_profile.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/boot_profile.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/boot_profile.cpp.o.d"
  "/root/repo/src/profiler/dip_detector.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/dip_detector.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/dip_detector.cpp.o.d"
  "/root/repo/src/profiler/marker.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/marker.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/marker.cpp.o.d"
  "/root/repo/src/profiler/naive_threshold.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/naive_threshold.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/naive_threshold.cpp.o.d"
  "/root/repo/src/profiler/normalizer.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/normalizer.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/normalizer.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/profiler.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/profiler.cpp.o.d"
  "/root/repo/src/profiler/report.cpp" "src/profiler/CMakeFiles/emprof_profiler.dir/report.cpp.o" "gcc" "src/profiler/CMakeFiles/emprof_profiler.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
