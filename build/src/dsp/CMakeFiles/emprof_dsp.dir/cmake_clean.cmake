file(REMOVE_RECURSE
  "CMakeFiles/emprof_dsp.dir/fft.cpp.o"
  "CMakeFiles/emprof_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/fir.cpp.o"
  "CMakeFiles/emprof_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/moving_stats.cpp.o"
  "CMakeFiles/emprof_dsp.dir/moving_stats.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/noise.cpp.o"
  "CMakeFiles/emprof_dsp.dir/noise.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/series_ops.cpp.o"
  "CMakeFiles/emprof_dsp.dir/series_ops.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/signal_io.cpp.o"
  "CMakeFiles/emprof_dsp.dir/signal_io.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/stft.cpp.o"
  "CMakeFiles/emprof_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/emprof_dsp.dir/window.cpp.o"
  "CMakeFiles/emprof_dsp.dir/window.cpp.o.d"
  "libemprof_dsp.a"
  "libemprof_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
