# Empty dependencies file for emprof_dsp.
# This may be replaced when dependencies are built.
