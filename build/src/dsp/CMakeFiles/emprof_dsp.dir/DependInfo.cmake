
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/moving_stats.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/moving_stats.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/moving_stats.cpp.o.d"
  "/root/repo/src/dsp/noise.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/noise.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/noise.cpp.o.d"
  "/root/repo/src/dsp/series_ops.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/series_ops.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/series_ops.cpp.o.d"
  "/root/repo/src/dsp/signal_io.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/signal_io.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/signal_io.cpp.o.d"
  "/root/repo/src/dsp/stft.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/stft.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/stft.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/emprof_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/emprof_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
