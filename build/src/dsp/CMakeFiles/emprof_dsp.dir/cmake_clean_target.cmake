file(REMOVE_RECURSE
  "libemprof_dsp.a"
)
