file(REMOVE_RECURSE
  "CMakeFiles/emprof_sim.dir/cache.cpp.o"
  "CMakeFiles/emprof_sim.dir/cache.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/core.cpp.o"
  "CMakeFiles/emprof_sim.dir/core.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/emprof_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/hierarchy.cpp.o"
  "CMakeFiles/emprof_sim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/isa.cpp.o"
  "CMakeFiles/emprof_sim.dir/isa.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/memory.cpp.o"
  "CMakeFiles/emprof_sim.dir/memory.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/power.cpp.o"
  "CMakeFiles/emprof_sim.dir/power.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/prefetcher.cpp.o"
  "CMakeFiles/emprof_sim.dir/prefetcher.cpp.o.d"
  "CMakeFiles/emprof_sim.dir/simulator.cpp.o"
  "CMakeFiles/emprof_sim.dir/simulator.cpp.o.d"
  "libemprof_sim.a"
  "libemprof_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
