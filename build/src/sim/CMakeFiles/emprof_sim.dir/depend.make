# Empty dependencies file for emprof_sim.
# This may be replaced when dependencies are built.
