
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/emprof_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/emprof_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/ground_truth.cpp" "src/sim/CMakeFiles/emprof_sim.dir/ground_truth.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/ground_truth.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/sim/CMakeFiles/emprof_sim.dir/hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/sim/isa.cpp" "src/sim/CMakeFiles/emprof_sim.dir/isa.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/isa.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/emprof_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/emprof_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/prefetcher.cpp" "src/sim/CMakeFiles/emprof_sim.dir/prefetcher.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/prefetcher.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/emprof_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/emprof_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
