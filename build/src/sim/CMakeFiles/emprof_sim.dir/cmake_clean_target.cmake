file(REMOVE_RECURSE
  "libemprof_sim.a"
)
