
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dsp/test_fft.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o.d"
  "/root/repo/tests/dsp/test_fir.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_fir.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_fir.cpp.o.d"
  "/root/repo/tests/dsp/test_moving_stats.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_moving_stats.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_moving_stats.cpp.o.d"
  "/root/repo/tests/dsp/test_noise.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_noise.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_noise.cpp.o.d"
  "/root/repo/tests/dsp/test_rng.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_rng.cpp.o.d"
  "/root/repo/tests/dsp/test_series_ops.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_series_ops.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_series_ops.cpp.o.d"
  "/root/repo/tests/dsp/test_signal_io.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_signal_io.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_signal_io.cpp.o.d"
  "/root/repo/tests/dsp/test_stft.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_stft.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_stft.cpp.o.d"
  "/root/repo/tests/dsp/test_window.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/emprof_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/emprof_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emprof_em.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/emprof_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/emprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
