file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_fir.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fir.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_moving_stats.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_moving_stats.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_noise.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_noise.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_rng.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_rng.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_series_ops.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_series_ops.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_signal_io.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_signal_io.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_stft.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_stft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
