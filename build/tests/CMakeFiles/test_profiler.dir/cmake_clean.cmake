file(REMOVE_RECURSE
  "CMakeFiles/test_profiler.dir/profiler/test_attribution.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_attribution.cpp.o.d"
  "CMakeFiles/test_profiler.dir/profiler/test_boot_profile.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_boot_profile.cpp.o.d"
  "CMakeFiles/test_profiler.dir/profiler/test_dip_detector.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_dip_detector.cpp.o.d"
  "CMakeFiles/test_profiler.dir/profiler/test_marker.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_marker.cpp.o.d"
  "CMakeFiles/test_profiler.dir/profiler/test_normalizer.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_normalizer.cpp.o.d"
  "CMakeFiles/test_profiler.dir/profiler/test_profiler.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_profiler.cpp.o.d"
  "CMakeFiles/test_profiler.dir/profiler/test_streaming.cpp.o"
  "CMakeFiles/test_profiler.dir/profiler/test_streaming.cpp.o.d"
  "test_profiler"
  "test_profiler.pdb"
  "test_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
