
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/profiler/test_attribution.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_attribution.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_attribution.cpp.o.d"
  "/root/repo/tests/profiler/test_boot_profile.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_boot_profile.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_boot_profile.cpp.o.d"
  "/root/repo/tests/profiler/test_dip_detector.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_dip_detector.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_dip_detector.cpp.o.d"
  "/root/repo/tests/profiler/test_marker.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_marker.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_marker.cpp.o.d"
  "/root/repo/tests/profiler/test_normalizer.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_normalizer.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_normalizer.cpp.o.d"
  "/root/repo/tests/profiler/test_profiler.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_profiler.cpp.o.d"
  "/root/repo/tests/profiler/test_streaming.cpp" "tests/CMakeFiles/test_profiler.dir/profiler/test_streaming.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/profiler/test_streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/emprof_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/emprof_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emprof_em.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/emprof_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/emprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
