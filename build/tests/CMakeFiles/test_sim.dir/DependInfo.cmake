
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_cache.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cpp.o.d"
  "/root/repo/tests/sim/test_core.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_core.cpp.o.d"
  "/root/repo/tests/sim/test_ground_truth.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_ground_truth.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_ground_truth.cpp.o.d"
  "/root/repo/tests/sim/test_hierarchy.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_hierarchy.cpp.o.d"
  "/root/repo/tests/sim/test_memory.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_memory.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_memory.cpp.o.d"
  "/root/repo/tests/sim/test_memory_background.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_memory_background.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_memory_background.cpp.o.d"
  "/root/repo/tests/sim/test_prefetcher.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_prefetcher.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_prefetcher.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_trace.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/emprof_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/emprof_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emprof_em.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/emprof_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/emprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
