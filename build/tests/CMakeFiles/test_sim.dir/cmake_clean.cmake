file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cache.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cache.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_core.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_core.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_ground_truth.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_ground_truth.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_hierarchy.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_hierarchy.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_memory.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_memory.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_memory_background.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_memory_background.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_prefetcher.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_prefetcher.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
