# Empty compiler generated dependencies file for emprof_capture.
# This may be replaced when dependencies are built.
