file(REMOVE_RECURSE
  "CMakeFiles/emprof_capture.dir/emprof_capture.cpp.o"
  "CMakeFiles/emprof_capture.dir/emprof_capture.cpp.o.d"
  "emprof_capture"
  "emprof_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
