file(REMOVE_RECURSE
  "CMakeFiles/emprof_analyze.dir/emprof_analyze.cpp.o"
  "CMakeFiles/emprof_analyze.dir/emprof_analyze.cpp.o.d"
  "emprof_analyze"
  "emprof_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emprof_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
