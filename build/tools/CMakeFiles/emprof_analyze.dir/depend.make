# Empty dependencies file for emprof_analyze.
# This may be replaced when dependencies are built.
