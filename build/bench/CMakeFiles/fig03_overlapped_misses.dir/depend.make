# Empty dependencies file for fig03_overlapped_misses.
# This may be replaced when dependencies are built.
