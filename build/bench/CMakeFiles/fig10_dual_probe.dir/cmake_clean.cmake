file(REMOVE_RECURSE
  "CMakeFiles/fig10_dual_probe.dir/fig10_dual_probe.cpp.o"
  "CMakeFiles/fig10_dual_probe.dir/fig10_dual_probe.cpp.o.d"
  "fig10_dual_probe"
  "fig10_dual_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dual_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
