# Empty dependencies file for fig10_dual_probe.
# This may be replaced when dependencies are built.
