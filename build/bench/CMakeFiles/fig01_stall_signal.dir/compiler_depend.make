# Empty compiler generated dependencies file for fig01_stall_signal.
# This may be replaced when dependencies are built.
