file(REMOVE_RECURSE
  "CMakeFiles/fig01_stall_signal.dir/fig01_stall_signal.cpp.o"
  "CMakeFiles/fig01_stall_signal.dir/fig01_stall_signal.cpp.o.d"
  "fig01_stall_signal"
  "fig01_stall_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_stall_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
