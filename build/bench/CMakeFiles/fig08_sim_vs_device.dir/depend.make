# Empty dependencies file for fig08_sim_vs_device.
# This may be replaced when dependencies are built.
