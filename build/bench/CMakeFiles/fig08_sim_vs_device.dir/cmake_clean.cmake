file(REMOVE_RECURSE
  "CMakeFiles/fig08_sim_vs_device.dir/fig08_sim_vs_device.cpp.o"
  "CMakeFiles/fig08_sim_vs_device.dir/fig08_sim_vs_device.cpp.o.d"
  "fig08_sim_vs_device"
  "fig08_sim_vs_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sim_vs_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
