# Empty dependencies file for table2_microbench_accuracy.
# This may be replaced when dependencies are built.
