# Empty dependencies file for baseline_perf_validation.
# This may be replaced when dependencies are built.
