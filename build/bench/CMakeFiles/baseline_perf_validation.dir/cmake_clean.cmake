file(REMOVE_RECURSE
  "CMakeFiles/baseline_perf_validation.dir/baseline_perf_validation.cpp.o"
  "CMakeFiles/baseline_perf_validation.dir/baseline_perf_validation.cpp.o.d"
  "baseline_perf_validation"
  "baseline_perf_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_perf_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
