file(REMOVE_RECURSE
  "CMakeFiles/table5_attribution.dir/table5_attribution.cpp.o"
  "CMakeFiles/table5_attribution.dir/table5_attribution.cpp.o.d"
  "table5_attribution"
  "table5_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
