# Empty compiler generated dependencies file for table5_attribution.
# This may be replaced when dependencies are built.
