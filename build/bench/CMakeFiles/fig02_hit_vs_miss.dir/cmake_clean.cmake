file(REMOVE_RECURSE
  "CMakeFiles/fig02_hit_vs_miss.dir/fig02_hit_vs_miss.cpp.o"
  "CMakeFiles/fig02_hit_vs_miss.dir/fig02_hit_vs_miss.cpp.o.d"
  "fig02_hit_vs_miss"
  "fig02_hit_vs_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_hit_vs_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
