# Empty compiler generated dependencies file for fig02_hit_vs_miss.
# This may be replaced when dependencies are built.
