file(REMOVE_RECURSE
  "CMakeFiles/fig11_latency_histogram.dir/fig11_latency_histogram.cpp.o"
  "CMakeFiles/fig11_latency_histogram.dir/fig11_latency_histogram.cpp.o.d"
  "fig11_latency_histogram"
  "fig11_latency_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_latency_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
