# Empty dependencies file for fig11_latency_histogram.
# This may be replaced when dependencies are built.
