# Empty dependencies file for fig14_spectrogram.
# This may be replaced when dependencies are built.
