file(REMOVE_RECURSE
  "CMakeFiles/fig14_spectrogram.dir/fig14_spectrogram.cpp.o"
  "CMakeFiles/fig14_spectrogram.dir/fig14_spectrogram.cpp.o.d"
  "fig14_spectrogram"
  "fig14_spectrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_spectrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
