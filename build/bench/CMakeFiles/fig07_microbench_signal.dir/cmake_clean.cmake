file(REMOVE_RECURSE
  "CMakeFiles/fig07_microbench_signal.dir/fig07_microbench_signal.cpp.o"
  "CMakeFiles/fig07_microbench_signal.dir/fig07_microbench_signal.cpp.o.d"
  "fig07_microbench_signal"
  "fig07_microbench_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_microbench_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
