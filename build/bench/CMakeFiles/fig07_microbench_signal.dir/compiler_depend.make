# Empty compiler generated dependencies file for fig07_microbench_signal.
# This may be replaced when dependencies are built.
