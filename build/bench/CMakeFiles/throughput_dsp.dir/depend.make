# Empty dependencies file for throughput_dsp.
# This may be replaced when dependencies are built.
