file(REMOVE_RECURSE
  "CMakeFiles/throughput_dsp.dir/throughput_dsp.cpp.o"
  "CMakeFiles/throughput_dsp.dir/throughput_dsp.cpp.o.d"
  "throughput_dsp"
  "throughput_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
