# Empty dependencies file for fig04_physical_signal.
# This may be replaced when dependencies are built.
