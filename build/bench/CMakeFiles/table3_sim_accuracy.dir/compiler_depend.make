# Empty compiler generated dependencies file for table3_sim_accuracy.
# This may be replaced when dependencies are built.
