# Empty dependencies file for table4_spec_profile.
# This may be replaced when dependencies are built.
