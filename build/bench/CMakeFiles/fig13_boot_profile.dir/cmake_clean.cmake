file(REMOVE_RECURSE
  "CMakeFiles/fig13_boot_profile.dir/fig13_boot_profile.cpp.o"
  "CMakeFiles/fig13_boot_profile.dir/fig13_boot_profile.cpp.o.d"
  "fig13_boot_profile"
  "fig13_boot_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_boot_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
