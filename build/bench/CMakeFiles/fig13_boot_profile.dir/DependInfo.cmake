
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_boot_profile.cpp" "bench/CMakeFiles/fig13_boot_profile.dir/fig13_boot_profile.cpp.o" "gcc" "bench/CMakeFiles/fig13_boot_profile.dir/fig13_boot_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/emprof_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/emprof_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emprof_em.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/emprof_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/emprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emprof_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
