# Empty dependencies file for fig13_boot_profile.
# This may be replaced when dependencies are built.
