file(REMOVE_RECURSE
  "CMakeFiles/fig05_refresh.dir/fig05_refresh.cpp.o"
  "CMakeFiles/fig05_refresh.dir/fig05_refresh.cpp.o.d"
  "fig05_refresh"
  "fig05_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
