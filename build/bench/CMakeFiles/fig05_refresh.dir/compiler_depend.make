# Empty compiler generated dependencies file for fig05_refresh.
# This may be replaced when dependencies are built.
