file(REMOVE_RECURSE
  "CMakeFiles/boot_profiling.dir/boot_profiling.cpp.o"
  "CMakeFiles/boot_profiling.dir/boot_profiling.cpp.o.d"
  "boot_profiling"
  "boot_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
