# Empty compiler generated dependencies file for boot_profiling.
# This may be replaced when dependencies are built.
