file(REMOVE_RECURSE
  "CMakeFiles/code_attribution.dir/code_attribution.cpp.o"
  "CMakeFiles/code_attribution.dir/code_attribution.cpp.o.d"
  "code_attribution"
  "code_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
