# Empty dependencies file for code_attribution.
# This may be replaced when dependencies are built.
