/**
 * @file
 * Profiling your own workload.
 *
 * Workloads are dynamic micro-op streams; the easiest way to build one
 * is SegmentedWorkload: add segments, each with an iteration count and
 * a callback that appends one iteration's ops.  This example builds a
 * toy "image blur" — stream the input row, random-access a lookup
 * table, write the output — and shows how its memory behaviour looks
 * to EMPROF, including how ground truth from the simulator can be used
 * to sanity-check what the profiler reports.
 */

#include <cstdio>
#include <memory>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/profiler.hpp"
#include "workloads/common.hpp"

using namespace emprof;

namespace {

/** A toy image-processing kernel. */
class BlurWorkload : public workloads::SegmentedWorkload
{
  public:
    BlurWorkload()
    {
        // 2 MiB input image, streamed; a small weight table with high
        // reuse; output stores.
        auto input = std::make_shared<workloads::StreamAddresses>(
            0x4000'0000, 2 * 1024 * 1024);
        auto weights = std::make_shared<workloads::RandomAddresses>(
            0x5000'0000, 2 * 1024, /*seed=*/7);
        auto output = std::make_shared<workloads::StreamAddresses>(
            0x6000'0000, 2 * 1024 * 1024);

        addSegment("blur_rows", 40'000, [=](auto &out, uint64_t) {
            workloads::Addr pc = 0x1000;
            // Load a pixel neighbourhood (sequential: prefetchable on
            // cores that have a prefetcher, cold misses otherwise).
            pc = workloads::emitIndependentLoad(out, pc, input->next(), 0);
            // Weight lookups hit the cache.
            pc = workloads::emitDependentLoad(out, pc, weights->next(), 0);
            // The convolution itself.
            pc = workloads::emitCompute(out, pc, 60, 0, /*mul_every=*/4);
            // Store the result (retires via the store buffer).
            workloads::MicroOp store = sim::makeStore(pc, output->next());
            out.push_back(store);
            workloads::emitLoopBranch(out, pc + 4, 0);
        });
    }
};

} // namespace

int
main()
{
    const auto device = devices::makeOlimex();

    BlurWorkload workload;
    sim::Simulator simulator(device.sim);
    const auto capture = em::captureRun(simulator, workload, device.probe);

    profiler::EmProfConfig config;
    config.clockHz = device.clockHz();
    const auto result =
        profiler::EmProf::analyze(capture.magnitude, config);

    std::printf("%s",
                result.report.toText("EMPROF profile of BlurWorkload:")
                    .c_str());

    // Because this is a simulation, we can check EMPROF against the
    // ground truth — something you cannot do on a real device, which
    // is exactly why the simulator substrate exists (Sec. V-C).
    const auto &gt = simulator.groundTruth();
    std::printf("\nsimulator ground truth: %llu raw LLC misses, "
                "%zu stall intervals, %llu stall cycles\n",
                static_cast<unsigned long long>(gt.rawLlcMisses()),
                gt.stallIntervals().size(),
                static_cast<unsigned long long>(gt.missStallCycles()));
    std::printf("(raw misses exceed stall intervals when streaming "
                "misses overlap — Fig. 3)\n");
    return 0;
}
