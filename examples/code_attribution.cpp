/**
 * @file
 * Attributing LLC-miss stalls to code regions (the paper's Sec. VI-D).
 *
 * EMPROF tells you *when* the processor stalled on memory; spectral
 * attribution tells you *where in the code* that time belongs, still
 * using only the EM signal: loop-level regions have distinct
 * short-term spectra, so region boundaries show up as jumps in the
 * frame-to-frame spectral distance.  Joining the two produces a
 * per-function memory profile like Table V.
 */

#include <cstdio>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/attribution.hpp"
#include "profiler/profiler.hpp"
#include "workloads/spec.hpp"

int
main()
{
    using namespace emprof;

    const auto device = devices::makeOlimex();

    // parser has three functions with very different memory behaviour:
    // read_dictionary (streaming), init_randtable (cache-resident) and
    // batch_process (heavy random access).
    auto workload = workloads::makeSpec("parser", 12'000'000, 42);

    sim::Simulator simulator(device.sim);
    const auto capture =
        em::captureRun(simulator, *workload, device.probe);

    // Step 1: EMPROF finds the stalls.
    profiler::EmProfConfig config;
    config.clockHz = device.clockHz();
    const auto profile =
        profiler::EmProf::analyze(capture.magnitude, config);
    std::printf("detected %llu LLC-miss stalls in %.2f ms of signal\n\n",
                static_cast<unsigned long long>(
                    profile.report.totalEvents),
                capture.magnitude.duration() * 1e3);

    // Step 2: the attributor segments the signal into code regions.
    profiler::SpectralAttributor attributor;
    const auto regions = attributor.segment(capture.magnitude);
    std::printf("spectral segmentation found %zu regions:\n",
                regions.size());
    for (const auto &region : regions) {
        std::printf("  %c: %.2f .. %.2f ms\n",
                    static_cast<char>('A' + region.label % 26),
                    region.startTime * 1e3, region.endTime * 1e3);
    }

    // Step 3: join them.
    const auto rows = attributor.attribute(regions, profile.events,
                                           capture.magnitude.sampleRateHz,
                                           device.clockHz());
    std::printf("\n%s",
                profiler::SpectralAttributor::toText(
                    rows, workloads::ParserPhases::names())
                    .c_str());
    std::printf("\noptimisation target: the region with the highest "
                "MemStall%% and time share.\n");
    return 0;
}
