/**
 * @file
 * Quickstart: profile a known workload on a modelled device, end to
 * end, in ~30 lines.
 *
 * The flow mirrors a real EMPROF session:
 *   1. pick a target device (Table I models, or your own SimConfig),
 *   2. run the workload while "probing" it — the EM chain turns the
 *      core's cycle-by-cycle activity into the received magnitude
 *      signal an SDR would deliver,
 *   3. hand the magnitude signal to EMPROF, which needs *nothing* from
 *      the target: it normalises against its moving min/max envelope,
 *      finds duration-thresholded dips, and reports each one as an
 *      LLC-miss stall with its measured latency.
 */

#include <cstdio>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/profiler.hpp"
#include "workloads/microbenchmark.hpp"

int
main()
{
    using namespace emprof;

    // 1. The target: an Olimex A13-OLinuXino-MICRO IoT board.
    const auto device = devices::makeOlimex();

    // A workload engineered to produce exactly 1024 LLC misses
    // (Fig. 6 of the paper) — so we can check EMPROF's answer.
    workloads::MicrobenchmarkConfig bench;
    bench.totalMisses = 1024;
    bench.consecutiveMisses = 10;
    workloads::Microbenchmark workload(bench);

    // 2. Run it under the probe: 40 MHz bandwidth around the clock.
    sim::Simulator simulator(device.sim);
    const auto capture = em::captureRun(simulator, workload, device.probe);
    std::printf("captured %.2f ms of signal at %.1f MHz\n",
                capture.magnitude.duration() * 1e3,
                capture.magnitude.sampleRateHz / 1e6);

    // 3. Profile.  EMPROF only needs the clock frequency (to convert
    // stall durations into cycles).
    profiler::EmProfConfig config;
    config.clockHz = device.clockHz();
    const auto result = profiler::EmProf::analyze(capture.magnitude,
                                                  config);

    std::printf("%s", result.report.toText("EMPROF profile:").c_str());
    std::printf("\nengineered misses: %llu -> detected %llu\n",
                static_cast<unsigned long long>(workload.expectedMisses()),
                static_cast<unsigned long long>(
                    result.report.missEvents));
    std::printf("\nper-stall latency histogram:\n%s",
                profiler::latencyHistogram(result.events)
                    .toText("cyc")
                    .c_str());
    return 0;
}
