/**
 * @file
 * How much measurement bandwidth does EMPROF need?  (Sec. VI-B.)
 *
 * The receiver's bandwidth sets the magnitude sample rate, and with it
 * the time resolution of stall detection.  This example sweeps the
 * bandwidth for a workload of your choice and prints the detection
 * trade-off — the paper's conclusion is that ~6% of the clock
 * frequency (60 MHz at ~1 GHz) is already enough.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/profiler.hpp"
#include "workloads/spec.hpp"

int
main(int argc, char **argv)
{
    using namespace emprof;

    const std::string workload_name = argc > 1 ? argv[1] : "mcf";
    const auto device = devices::makeOlimex();

    std::printf("bandwidth study: %s on %s (clock %.3f GHz)\n\n",
                workload_name.c_str(), device.name.c_str(),
                device.clockHz() / 1e9);
    std::printf("  %9s %10s %10s %12s %14s\n", "BW (MHz)", "events",
                "stall %", "avg (cyc)", "resolution");

    for (double bw : {10e6, 20e6, 40e6, 60e6, 80e6, 160e6}) {
        auto workload = workloads::makeSpec(workload_name, 8'000'000, 7);
        if (!workload) {
            std::printf("unknown workload '%s'\n", workload_name.c_str());
            return 1;
        }

        auto probe = device.probe;
        probe.receiver.bandwidthHz = bw;

        sim::Simulator simulator(device.sim);
        const auto capture =
            em::captureRun(simulator, *workload, probe);

        profiler::EmProfConfig config;
        config.clockHz = device.clockHz();
        const auto result =
            profiler::EmProf::analyze(capture.magnitude, config);

        std::printf("  %9.0f %10llu %10.2f %12.0f %10.1f cyc\n",
                    bw / 1e6,
                    static_cast<unsigned long long>(
                        result.report.totalEvents),
                    result.report.stallPercent,
                    result.report.avgStallCycles,
                    device.clockHz() / capture.magnitude.sampleRateHz);
    }

    std::printf("\nreading the table: once events and stall%% stop "
                "changing with bandwidth,\nyou have enough — spending "
                "more only sharpens per-stall latency resolution.\n");
    return 0;
}
