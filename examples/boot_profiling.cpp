/**
 * @file
 * Boot-sequence profiling (the paper's Sec. VI-C use case).
 *
 * EMPROF needs no hardware counters, no OS and no instrumentation, so
 * it can profile a device's boot from its very first instruction —
 * before any performance-monitoring infrastructure exists.  This
 * example profiles two boot-ups (pass a seed to vary the run) and
 * prints the LLC-miss rate over boot time, which is what you would
 * use to decide whether memory-locality work could speed up boot.
 */

#include <cstdio>
#include <cstdlib>

#include "devices/devices.hpp"
#include "em/capture.hpp"
#include "profiler/boot_profile.hpp"
#include "profiler/profiler.hpp"
#include "workloads/boot.hpp"

int
main(int argc, char **argv)
{
    using namespace emprof;

    const uint64_t seed =
        argc > 1 ? strtoull(argv[1], nullptr, 10) : 0xB007;

    const auto device = devices::makeOlimex();

    workloads::BootConfig boot_cfg;
    boot_cfg.scaleOps = 4'000'000;
    boot_cfg.seed = seed;
    auto boot = workloads::makeBoot(boot_cfg);

    sim::Simulator simulator(device.sim);
    const auto capture = em::captureRun(simulator, *boot, device.probe);

    profiler::EmProfConfig config;
    config.clockHz = device.clockHz();
    const auto result =
        profiler::EmProf::analyze(capture.magnitude, config);

    // Bucket the detected stalls into a miss-rate-vs-time curve.
    const auto profile = profiler::makeBootProfile(
        result.events, capture.magnitude.sampleRateHz,
        capture.magnitude.samples.size(), /*bucket=*/100e-6);

    std::printf("boot profile (seed %llu):\n",
                static_cast<unsigned long long>(seed));
    std::printf("%s", profile.toText().c_str());
    std::printf("\nphases in this model: ");
    for (const auto &name : workloads::bootPhaseNames())
        std::printf("%s ", name.c_str());
    std::printf("\n\nthe miss-rate burst early in the boot is the "
                "bootloader's image copy;\nthe pointer-heavy plateau "
                "after it is kernel initialisation.\n");
    return 0;
}
