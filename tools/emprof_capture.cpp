/**
 * @file
 * emprof_capture — simulate a device running a workload and record the
 * received EM signal for emprof_analyze (or any external tool; --csv
 * exports plottable text).
 *
 *   emprof_capture --device olimex --workload mcf --out mcf.emcap
 *   emprof_capture --workload microbench --tm 1024 --cm 10 \
 *                  --bandwidth-mhz 80 --out mb.emcap --quantize-bits 16
 *
 * Outputs named *.emsig get the legacy one-blob container; everything
 * else is written as a chunked EMCAP capture (chunked + checksummed +
 * optionally compressed, see src/store/).  The default EMCAP codec is
 * lossless f32 so analysis results are bit-identical to a raw dump;
 * --quantize-bits 16 halves the file (and more, with compression) at
 * ~1e-5 relative error.
 *
 * This stands in for the paper's probe + spectrum-analyzer setup; on a
 * real bench you would record the signal with an SDR instead and feed
 * it straight to emprof_analyze.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_parse.hpp"
#include "devices/devices.hpp"
#include "obs/stage_profiler.hpp"
#include "obs_cli.hpp"
#include "dsp/impairment.hpp"
#include "dsp/signal_io.hpp"
#include "em/capture.hpp"
#include "serve/client.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"
#include "workloads/boot.hpp"
#include "workloads/microbenchmark.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] --out <file.emsig>\n"
        "  --device <alcatel|samsung|olimex>   target (default olimex)\n"
        "  --workload <name>    microbench | boot | one of:",
        argv0);
    for (const auto &name : workloads::specNames())
        std::printf(" %s", name.c_str());
    std::printf(
        "\n"
        "  --scale <ops>        workload size (default 8000000)\n"
        "  --seed <n>           workload seed (default 42)\n"
        "  --tm <n> --cm <n>    microbench parameters (1024 / 10)\n"
        "  --bandwidth-mhz <f>  measurement bandwidth (default 40)\n"
        "  --impair <spec>      inject RF impairments into the capture\n"
        "%s"
        "  --csv <path>         also export the magnitude as CSV\n"
        "  --push <endpoint>    after writing an EMCAP capture, push\n"
        "                       it to a running emprof_served and\n"
        "                       print the returned report (exit code\n"
        "                       carries the report status, 3 =\n"
        "                       degraded, 7 = connection lost after\n"
        "                       all retries)\n"
        "  --push-retries <n>   reconnect attempts when the push\n"
        "                       connection drops (default 3; resumes\n"
        "                       the upload where it left off)\n"
        "EMCAP output (any --out not named *.emsig):\n"
        "  --quantize-bits <n>  quantise samples to n bits (2..16;\n"
        "                       default 0 = lossless float32)\n"
        "  --no-compress        store chunks verbatim (no bit packing)\n"
        "  --chunk-samples <n>  samples per chunk (default 65536)\n"
        "%s",
        dsp::impairmentSpecHelp(), tools::ObsCli::kUsage);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string device_name = "olimex", workload_name = "microbench";
    std::string out_path, csv_path, push_endpoint;
    uint64_t scale = 8'000'000, seed = 42, tm = 1024, cm = 10;
    uint64_t quantize_bits = 0, chunk_samples = 0;
    uint32_t push_retries = 3;
    bool compress = true;
    double bandwidth_mhz = 40.0;
    std::string impair_spec;
    tools::ObsCli obs_cli;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (obs_cli.parseArg(argc, argv, i))
            continue;
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--device")
            device_name = next();
        else if (arg == "--workload")
            workload_name = next();
        else if (arg == "--scale")
            scale = tools::parseU64Flag("--scale", next(), 1,
                                        uint64_t{1} << 40);
        else if (arg == "--seed")
            seed = tools::parseU64Flag("--seed", next(), 0, UINT64_MAX);
        else if (arg == "--tm")
            tm = tools::parseU64Flag("--tm", next(), 1,
                                     uint64_t{1} << 32);
        else if (arg == "--cm")
            cm = tools::parseU64Flag("--cm", next(), 1,
                                     uint64_t{1} << 32);
        else if (arg == "--bandwidth-mhz")
            bandwidth_mhz = tools::parseDoubleFlag("--bandwidth-mhz",
                                                   next(), 1e-6, 1e6);
        else if (arg == "--impair")
            impair_spec = next();
        else if (arg == "--quantize-bits")
            quantize_bits = tools::parseU64Flag("--quantize-bits",
                                                next(), 0, 16);
        else if (arg == "--chunk-samples")
            chunk_samples = tools::parseU64Flag(
                "--chunk-samples", next(), 1, uint64_t{1} << 32);
        else if (arg == "--no-compress")
            compress = false;
        else if (arg == "--out")
            out_path = next();
        else if (arg == "--csv")
            csv_path = next();
        else if (arg == "--push")
            push_endpoint = next();
        else if (arg == "--push-retries")
            push_retries = static_cast<uint32_t>(
                tools::parseU64Flag("--push-retries", next(), 1, 1000));
        else {
            usage(argv[0]);
            return 2;
        }
    }
    if (out_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    dsp::ImpairmentSpec impair;
    if (!impair_spec.empty()) {
        std::string impair_error;
        if (!dsp::parseImpairmentSpec(impair_spec, impair,
                                      &impair_error)) {
            std::fprintf(stderr, "--impair: %s\n",
                         impair_error.c_str());
            return 2;
        }
    }

    devices::DeviceModel device;
    if (device_name == "alcatel")
        device = devices::makeAlcatel();
    else if (device_name == "samsung")
        device = devices::makeSamsung();
    else if (device_name == "olimex")
        device = devices::makeOlimex();
    else {
        std::fprintf(stderr, "unknown device '%s'\n",
                     device_name.c_str());
        return 2;
    }

    std::unique_ptr<sim::TraceSource> workload;
    if (workload_name == "microbench") {
        workloads::MicrobenchmarkConfig cfg;
        cfg.totalMisses = tm;
        cfg.consecutiveMisses = cm;
        cfg.seed = seed;
        workload = std::make_unique<workloads::Microbenchmark>(cfg);
    } else if (workload_name == "boot") {
        workloads::BootConfig cfg;
        cfg.scaleOps = scale;
        cfg.seed = seed;
        workload = workloads::makeBoot(cfg);
    } else {
        workload = workloads::makeSpec(workload_name, scale, seed);
    }
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }

    auto probe = device.probe;
    probe.receiver.bandwidthHz = bandwidth_mhz * 1e6;

    sim::Simulator simulator(device.sim);
    auto capture = [&] {
        EMPROF_OBS_STAGE("tool.capture");
        return em::captureRun(simulator, *workload, probe);
    }();

    // Impair the recorded magnitude in one batch pass (reference level
    // measured from the clean capture's RMS) rather than inside the
    // probe chain, so one clean run and its impaired variants share the
    // exact same underlying signal.
    if (impair.any()) {
        dsp::ImpairmentStats istats;
        dsp::applyImpairments(capture.magnitude, impair, &istats);
        std::printf("impaired (ref %.4g): %llu impulses, %llu dropout "
                    "samples, %llu clipped samples\n",
                    istats.referenceLevel,
                    static_cast<unsigned long long>(istats.impulses),
                    static_cast<unsigned long long>(
                        istats.dropoutSamples),
                    static_cast<unsigned long long>(
                        istats.clippedSamples));
    }

    std::printf("%s on %s: %llu cycles, %llu raw LLC misses\n",
                workload_name.c_str(), device.name.c_str(),
                static_cast<unsigned long long>(capture.simResult.cycles),
                static_cast<unsigned long long>(
                    capture.simResult.rawLlcMisses));
    std::printf("captured %zu magnitude samples at %.3f MHz\n",
                capture.magnitude.samples.size(),
                capture.magnitude.sampleRateHz / 1e6);

    const bool legacy_emsig =
        out_path.size() >= 6 &&
        out_path.compare(out_path.size() - 6, 6, ".emsig") == 0;
    {
    EMPROF_OBS_STAGE("tool.write");
    if (legacy_emsig) {
        common::io::IoError io_error;
        if (!dsp::saveSignal(out_path, capture.magnitude, &io_error)) {
            std::fprintf(stderr, "%s\n", io_error.describe().c_str());
            return 1;
        }
        std::printf("wrote %s (legacy .emsig)\n", out_path.c_str());
    } else {
        if (quantize_bits != 0 &&
            (quantize_bits < 2 || quantize_bits > 16)) {
            std::fprintf(stderr,
                         "--quantize-bits must be 0 (lossless) or "
                         "2..16\n");
            return 2;
        }
        store::WriterOptions wopt;
        wopt.sampleRateHz = capture.magnitude.sampleRateHz;
        wopt.clockHz = device.clockHz();
        wopt.deviceName = device.name;
        wopt.codec = quantize_bits == 0 ? store::SampleCodec::F32
                                        : store::SampleCodec::QuantI16;
        wopt.quantBits = static_cast<unsigned>(quantize_bits);
        wopt.compress = compress;
        if (chunk_samples > 0)
            wopt.chunkSamples = static_cast<std::size_t>(chunk_samples);
        store::WriterStats wstats;
        std::string write_error;
        if (!store::writeCapture(out_path, capture.magnitude, wopt,
                                 &wstats, &write_error)) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         out_path.c_str(), write_error.c_str());
            return 1;
        }
        std::printf(
            "wrote %s: %llu bytes in %llu chunks, %.2fx vs raw f32 "
            "(%s%s)\n",
            out_path.c_str(),
            static_cast<unsigned long long>(wstats.fileBytes),
            static_cast<unsigned long long>(wstats.chunks),
            wstats.compressionRatio(),
            quantize_bits == 0
                ? "lossless f32"
                : ("i16 @ " + std::to_string(quantize_bits) + " bits")
                      .c_str(),
            compress ? ", packed" : ", raw chunks");
    }
    }
    std::printf("analyse with: emprof_analyze %s --clock-ghz %.3f\n",
                out_path.c_str(), device.clockHz() / 1e9);

    common::io::IoError csv_error;
    if (!csv_path.empty() &&
        !dsp::saveCsv(csv_path, capture.magnitude, &csv_error)) {
        std::fprintf(stderr, "%s\n", csv_error.describe().c_str());
        return 1;
    }
    if (!obs_cli.finish())
        return 1;

    if (!push_endpoint.empty()) {
        if (!store::CaptureReader::isEmcap(out_path)) {
            std::fprintf(stderr, "--push needs an EMCAP output "
                                 "(--out not named *.emsig)\n");
            return 2;
        }
        serve::Endpoint endpoint;
        std::string push_error;
        if (!serve::parseEndpoint(push_endpoint, endpoint,
                                  &push_error)) {
            std::fprintf(stderr, "--push: %s\n", push_error.c_str());
            return 2;
        }
        serve::PushOptions options;
        options.maxAttempts = push_retries;
        const serve::PushResult pushed =
            serve::pushCaptureResumable(endpoint, out_path, options);
        if (!pushed.ok) {
            if (pushed.connectionLost) {
                std::fprintf(stderr,
                             "push failed: connection lost "
                             "(resumable) after %u attempts: %s\n",
                             pushed.attempts, pushed.error.c_str());
                return 7;
            }
            std::fprintf(stderr, "push failed: %s\n",
                         pushed.error.c_str());
            return 1;
        }
        std::fputs(pushed.report.reportText.c_str(), stdout);
        return static_cast<int>(pushed.report.status);
    }
    return 0;
}
