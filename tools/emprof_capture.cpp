/**
 * @file
 * emprof_capture — simulate a device running a workload and record the
 * received EM signal to an .emsig file for emprof_analyze (or any
 * external tool; --csv exports plottable text).
 *
 *   emprof_capture --device olimex --workload mcf --out mcf.emsig
 *   emprof_capture --workload microbench --tm 1024 --cm 10 \
 *                  --bandwidth-mhz 80 --out mb.emsig
 *
 * This stands in for the paper's probe + spectrum-analyzer setup; on a
 * real bench you would record the signal with an SDR instead and feed
 * it straight to emprof_analyze.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "devices/devices.hpp"
#include "dsp/signal_io.hpp"
#include "em/capture.hpp"
#include "workloads/boot.hpp"
#include "workloads/microbenchmark.hpp"
#include "workloads/spec.hpp"

using namespace emprof;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] --out <file.emsig>\n"
        "  --device <alcatel|samsung|olimex>   target (default olimex)\n"
        "  --workload <name>    microbench | boot | one of:",
        argv0);
    for (const auto &name : workloads::specNames())
        std::printf(" %s", name.c_str());
    std::printf(
        "\n"
        "  --scale <ops>        workload size (default 8000000)\n"
        "  --seed <n>           workload seed (default 42)\n"
        "  --tm <n> --cm <n>    microbench parameters (1024 / 10)\n"
        "  --bandwidth-mhz <f>  measurement bandwidth (default 40)\n"
        "  --csv <path>         also export the magnitude as CSV\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string device_name = "olimex", workload_name = "microbench";
    std::string out_path, csv_path;
    uint64_t scale = 8'000'000, seed = 42, tm = 1024, cm = 10;
    double bandwidth_mhz = 40.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--device")
            device_name = next();
        else if (arg == "--workload")
            workload_name = next();
        else if (arg == "--scale")
            scale = strtoull(next(), nullptr, 10);
        else if (arg == "--seed")
            seed = strtoull(next(), nullptr, 10);
        else if (arg == "--tm")
            tm = strtoull(next(), nullptr, 10);
        else if (arg == "--cm")
            cm = strtoull(next(), nullptr, 10);
        else if (arg == "--bandwidth-mhz")
            bandwidth_mhz = std::atof(next());
        else if (arg == "--out")
            out_path = next();
        else if (arg == "--csv")
            csv_path = next();
        else {
            usage(argv[0]);
            return 2;
        }
    }
    if (out_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    devices::DeviceModel device;
    if (device_name == "alcatel")
        device = devices::makeAlcatel();
    else if (device_name == "samsung")
        device = devices::makeSamsung();
    else if (device_name == "olimex")
        device = devices::makeOlimex();
    else {
        std::fprintf(stderr, "unknown device '%s'\n",
                     device_name.c_str());
        return 2;
    }

    std::unique_ptr<sim::TraceSource> workload;
    if (workload_name == "microbench") {
        workloads::MicrobenchmarkConfig cfg;
        cfg.totalMisses = tm;
        cfg.consecutiveMisses = cm;
        cfg.seed = seed;
        workload = std::make_unique<workloads::Microbenchmark>(cfg);
    } else if (workload_name == "boot") {
        workloads::BootConfig cfg;
        cfg.scaleOps = scale;
        cfg.seed = seed;
        workload = workloads::makeBoot(cfg);
    } else {
        workload = workloads::makeSpec(workload_name, scale, seed);
    }
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }

    auto probe = device.probe;
    probe.receiver.bandwidthHz = bandwidth_mhz * 1e6;

    sim::Simulator simulator(device.sim);
    const auto capture = em::captureRun(simulator, *workload, probe);

    std::printf("%s on %s: %llu cycles, %llu raw LLC misses\n",
                workload_name.c_str(), device.name.c_str(),
                static_cast<unsigned long long>(capture.simResult.cycles),
                static_cast<unsigned long long>(
                    capture.simResult.rawLlcMisses));
    std::printf("captured %zu magnitude samples at %.3f MHz\n",
                capture.magnitude.samples.size(),
                capture.magnitude.sampleRateHz / 1e6);

    if (!dsp::saveSignal(out_path, capture.magnitude)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    std::printf("analyse with: emprof_analyze %s --clock-ghz %.3f\n",
                out_path.c_str(), device.clockHz() / 1e9);

    if (!csv_path.empty() &&
        !dsp::saveCsv(csv_path, capture.magnitude)) {
        std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
        return 1;
    }
    return 0;
}
