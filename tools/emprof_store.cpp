/**
 * @file
 * emprof_store — manage EMCAP capture containers.
 *
 *   emprof_store inspect capture.emcap
 *   emprof_store verify  capture.emcap
 *   emprof_store convert capture.f32 capture.emcap --raw-f32 \
 *                        --rate-mhz 40 --quantize-bits 16
 *   emprof_store convert capture.emcap capture.f32
 *   emprof_store cut     capture.emcap slice.emcap \
 *                        --start-sample 1000000 --num-samples 400000
 *
 * `inspect` prints the header and a chunk-table summary; `verify`
 * re-checks every CRC in the file (exit 1 if anything is damaged,
 * naming the chunks that are); `convert` moves captures between EMCAP,
 * legacy .emsig, and raw float32 (output format chosen by the output
 * extension); `cut` re-encodes a sample range into a new EMCAP file
 * using the footer index to seek — it never decodes the rest of the
 * capture; `recover` salvages a truncated or unfinalized capture
 * (crashed writer, power cut, torn download) by rebuilding the chunk
 * index from the per-chunk headers and CRCs:
 *
 *   emprof_store recover damaged.emcap            # report only
 *   emprof_store recover damaged.emcap fixed.emcap
 *
 * `spool` manages an emprof_served result spool directory (see
 * src/serve/spool.hpp): list the recovered results, fetch one report
 * by session id (exit code carries the report status, like --push),
 * acknowledge collected results, and garbage-collect acked segments:
 *
 *   emprof_store spool list  /var/lib/emprof/spool
 *   emprof_store spool fetch /var/lib/emprof/spool <session-id-hex>
 *   emprof_store spool ack   /var/lib/emprof/spool <session-id-hex>
 *   emprof_store spool gc    /var/lib/emprof/spool
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "dsp/impairment.hpp"
#include "dsp/signal_io.hpp"
#include "obs/stage_profiler.hpp"
#include "obs_cli.hpp"
#include "serve/spool.hpp"
#include "store/capture_reader.hpp"
#include "store/capture_writer.hpp"

using namespace emprof;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> ...\n"
        "  inspect <file.emcap>\n"
        "  verify  <file.emcap>\n"
        "  convert <in> <out> [options]\n"
        "  cut     <in.emcap> <out.emcap> --start-sample <n>"
        " --num-samples <n>\n"
        "  recover <damaged.emcap> [<out.emcap>] [options]\n"
        "  spool   list|gc <dir>\n"
        "  spool   fetch|ack <dir> <session-id-hex>\n"
        "\n"
        "convert input: EMCAP/.emsig auto-detected by magic; raw dumps\n"
        "need --raw-f32 or --raw-iq plus --rate-mhz <f>.\n"
        "convert output by extension: .emcap | .emsig | anything else\n"
        "is written as raw float32.\n"
        "\n"
        "recover salvages every fully-flushed, CRC-valid chunk of a\n"
        "truncated or unfinalized capture; with an output path it\n"
        "re-encodes the salvage as a fresh finalized EMCAP file.\n"
        "\n"
        "EMCAP output options (convert, cut, and recover):\n"
        "  --quantize-bits <n>  0 = lossless f32 (default), 2..16\n"
        "  --no-compress        store chunks verbatim\n"
        "  --chunk-samples <n>  samples per chunk (default 65536)\n"
        "  --clock-ghz <f>      record a target clock in the header\n"
        "  --device <name>      record a device name in the header\n"
        "\n"
        "convert only:\n"
        "  --impair <spec>      inject RF impairments while converting\n"
        "%s"
        "\n%s",
        argv0, dsp::impairmentSpecHelp(), tools::ObsCli::kUsage);
}

bool
hasSuffix(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int
inspect(const std::string &path)
{
    store::CaptureReader reader;
    std::string error;
    if (!reader.open(path, &error)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return 1;
    }
    const auto &info = reader.info();
    std::printf("%s: EMCAP v%u\n", path.c_str(), info.version);
    std::printf("  codec         : %s\n",
                info.codec == store::SampleCodec::F32
                    ? "f32 (lossless)"
                    : ("i16 quantised, " +
                       std::to_string(info.quantBits) + " bits")
                          .c_str());
    std::printf("  sample rate   : %.3f MHz\n", info.sampleRateHz / 1e6);
    std::printf("  clock         : %.3f GHz\n", info.clockHz / 1e9);
    std::printf("  device        : %s\n", info.deviceName.c_str());
    std::printf("  samples       : %llu (%.3f ms)\n",
                static_cast<unsigned long long>(info.totalSamples),
                info.sampleRateHz > 0.0
                    ? static_cast<double>(info.totalSamples) /
                          info.sampleRateHz * 1e3
                    : 0.0);
    std::printf("  chunks        : %zu\n", reader.chunkCount());

    uint64_t stored = 0;
    for (std::size_t i = 0; i < reader.chunkCount(); ++i)
        stored += reader.chunk(i).storedBytes;
    const double raw = static_cast<double>(info.totalSamples) * 4.0;
    std::printf("  chunk bytes   : %llu (%.2fx vs raw f32)\n",
                static_cast<unsigned long long>(stored),
                stored > 0 ? raw / static_cast<double>(stored) : 0.0);
    if (reader.chunkCount() > 0) {
        const auto &first = reader.chunk(0);
        const auto &last = reader.chunk(reader.chunkCount() - 1);
        std::printf("  chunk layout  : %u samples/chunk, last %u\n",
                    first.sampleCount, last.sampleCount);
    }
    return 0;
}

int
verify(const std::string &path)
{
    store::CaptureReader reader;
    std::string error;
    if (!reader.open(path, &error)) {
        std::fprintf(stderr, "%s: FAILED: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    const auto result = reader.verify();
    if (!result.error.empty()) {
        std::fprintf(stderr, "%s: FAILED: %s\n", path.c_str(),
                     result.error.c_str());
        return 1;
    }
    if (!result.ok) {
        std::fprintf(stderr, "%s: FAILED: %zu of %zu chunks corrupt:",
                     path.c_str(), result.badChunks.size(),
                     result.chunksChecked);
        for (const std::size_t i : result.badChunks)
            std::fprintf(stderr, " %zu", i);
        std::fprintf(stderr, "\n");
        return 1;
    }
    std::printf("%s: OK (%zu chunks, all CRCs valid)\n", path.c_str(),
                result.chunksChecked);
    return 0;
}

struct OutputOptions
{
    uint64_t quantizeBits = 0;
    uint64_t chunkSamples = 0;
    bool compress = true;
    double clockGhz = 0.0;
    std::string deviceName;
    bool rawF32 = false;
    bool rawIq = false;
    double rateMhz = 0.0;
    uint64_t startSample = 0;
    uint64_t numSamples = 0;
    bool haveStart = false;
    bool haveCount = false;
    dsp::ImpairmentSpec impair;
};

/** Parse trailing options shared by convert and cut.  -1 on error. */
int
parseOptions(int argc, char **argv, int first, OutputOptions &opt)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quantize-bits")
            opt.quantizeBits = tools::parseU64Flag("--quantize-bits",
                                                   next(), 0, 16);
        else if (arg == "--chunk-samples")
            opt.chunkSamples = tools::parseU64Flag(
                "--chunk-samples", next(), 1, uint64_t{1} << 32);
        else if (arg == "--no-compress")
            opt.compress = false;
        else if (arg == "--clock-ghz")
            opt.clockGhz = tools::parseDoubleFlag("--clock-ghz", next(),
                                                  0.0, 1e3);
        else if (arg == "--device")
            opt.deviceName = next();
        else if (arg == "--raw-f32")
            opt.rawF32 = true;
        else if (arg == "--raw-iq")
            opt.rawIq = true;
        else if (arg == "--rate-mhz")
            opt.rateMhz = tools::parseDoubleFlag("--rate-mhz", next(),
                                                 1e-6, 1e6);
        else if (arg == "--start-sample") {
            opt.startSample = tools::parseU64Flag(
                "--start-sample", next(), 0, UINT64_MAX);
            opt.haveStart = true;
        } else if (arg == "--num-samples") {
            opt.numSamples = tools::parseU64Flag("--num-samples", next(),
                                                 1, UINT64_MAX);
            opt.haveCount = true;
        } else if (arg == "--impair") {
            std::string impair_error;
            if (!dsp::parseImpairmentSpec(next(), opt.impair,
                                          &impair_error)) {
                std::fprintf(stderr, "--impair: %s\n",
                             impair_error.c_str());
                return -1;
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return -1;
        }
    }
    if (opt.quantizeBits == 1) {
        std::fprintf(stderr,
                     "--quantize-bits must be 0 (lossless) or 2..16\n");
        return -1;
    }
    return 0;
}

store::WriterOptions
writerOptions(const OutputOptions &opt, double sample_rate_hz)
{
    store::WriterOptions wopt;
    wopt.sampleRateHz = sample_rate_hz;
    wopt.clockHz = opt.clockGhz * 1e9;
    wopt.deviceName = opt.deviceName;
    wopt.codec = opt.quantizeBits == 0 ? store::SampleCodec::F32
                                       : store::SampleCodec::QuantI16;
    wopt.quantBits = static_cast<unsigned>(opt.quantizeBits);
    wopt.compress = opt.compress;
    if (opt.chunkSamples > 0)
        wopt.chunkSamples = static_cast<std::size_t>(opt.chunkSamples);
    return wopt;
}

bool
writeRawF32(const std::string &path, const dsp::TimeSeries &series,
            std::string &error)
{
    common::io::CheckedFile file;
    const bool ok =
        file.open(path, common::io::CheckedFile::Mode::WriteTruncate) &&
        (series.samples.empty() ||
         file.writeAll(series.samples.data(),
                       series.samples.size() * sizeof(float),
                       "raw f32 payload")) &&
        file.close();
    if (!ok)
        error = file.error().describe();
    return ok;
}

int
convert(const std::string &in, const std::string &out,
        const OutputOptions &opt)
{
    dsp::TimeSeries series;
    double clock_ghz = opt.clockGhz;
    std::string device = opt.deviceName;

    const auto ftype = dsp::sniffSignalFile(in);
    if (opt.rawF32 || opt.rawIq) {
        if (opt.rateMhz <= 0.0) {
            std::fprintf(stderr,
                         "--rate-mhz is required for raw inputs\n");
            return 2;
        }
        common::io::IoError io_error;
        if (!dsp::loadRawF32(in, opt.rateMhz * 1e6, opt.rawIq, series,
                             &io_error)) {
            std::fprintf(stderr, "%s\n", io_error.describe().c_str());
            return 1;
        }
    } else if (ftype == dsp::SignalFileType::Emcap) {
        store::CaptureReader reader;
        std::string error;
        if (!reader.open(in, &error) || !reader.readAll(series, &error)) {
            std::fprintf(stderr, "%s: %s\n", in.c_str(), error.c_str());
            return 1;
        }
        // Metadata travels with the capture unless overridden.
        if (clock_ghz == 0.0)
            clock_ghz = reader.info().clockHz / 1e9;
        if (device.empty())
            device = reader.info().deviceName;
    } else if (ftype == dsp::SignalFileType::Emsig) {
        common::io::IoError io_error;
        if (!dsp::loadSignal(in, series, &io_error)) {
            std::fprintf(stderr, "%s\n", io_error.describe().c_str());
            return 1;
        }
    } else {
        std::fprintf(stderr,
                     "%s: unrecognised magic; pass --raw-f32/--raw-iq "
                     "for headerless dumps\n",
                     in.c_str());
        return 1;
    }

    if (opt.impair.any()) {
        dsp::ImpairmentStats istats;
        dsp::applyImpairments(series, opt.impair, &istats);
        std::printf("impaired (ref %.4g): %llu impulses, %llu dropout "
                    "samples, %llu clipped samples\n",
                    istats.referenceLevel,
                    static_cast<unsigned long long>(istats.impulses),
                    static_cast<unsigned long long>(
                        istats.dropoutSamples),
                    static_cast<unsigned long long>(
                        istats.clippedSamples));
    }

    bool ok;
    std::string write_error;
    if (hasSuffix(out, ".emcap")) {
        OutputOptions emcap_opt = opt;
        emcap_opt.clockGhz = clock_ghz;
        emcap_opt.deviceName = device;
        store::WriterStats stats;
        ok = store::writeCapture(out, series,
                                 writerOptions(emcap_opt,
                                               series.sampleRateHz),
                                 &stats, &write_error);
        if (ok)
            std::printf("wrote %s: %llu samples, %llu chunks, "
                        "%.2fx vs raw f32\n",
                        out.c_str(),
                        static_cast<unsigned long long>(stats.samples),
                        static_cast<unsigned long long>(stats.chunks),
                        stats.compressionRatio());
    } else if (hasSuffix(out, ".emsig")) {
        common::io::IoError io_error;
        ok = dsp::saveSignal(out, series, &io_error);
        if (ok)
            std::printf("wrote %s: %zu samples (.emsig)\n", out.c_str(),
                        series.samples.size());
        else
            write_error = io_error.describe();
    } else {
        ok = writeRawF32(out, series, write_error);
        if (ok)
            std::printf("wrote %s: %zu samples (raw f32)\n",
                        out.c_str(), series.samples.size());
    }
    if (!ok) {
        std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                     write_error.c_str());
        return 1;
    }
    return 0;
}

int
recover(const std::string &in, const std::string &out,
        const OutputOptions &opt)
{
    store::CaptureReader reader;
    store::RecoveryReport report;
    std::string error;
    if (!reader.openRecovered(in, &report, &error)) {
        std::fprintf(stderr, "%s: %s\n", in.c_str(), error.c_str());
        return 1;
    }

    std::printf("%s: salvaged %llu chunks / %llu samples "
                "(%llu bytes intact, %llu tail bytes dropped)\n",
                in.c_str(),
                static_cast<unsigned long long>(report.salvagedChunks),
                static_cast<unsigned long long>(report.salvagedSamples),
                static_cast<unsigned long long>(report.salvagedBytes),
                static_cast<unsigned long long>(
                    report.droppedTailBytes));
    if (!report.stopReason.empty())
        std::printf("  scan stopped: %s\n", report.stopReason.c_str());

    if (out.empty())
        return 0; // report-only dry run

    dsp::TimeSeries series;
    series.sampleRateHz = reader.info().sampleRateHz;
    if (!reader.readAll(series, &error)) {
        std::fprintf(stderr, "%s: %s\n", in.c_str(), error.c_str());
        return 1;
    }

    OutputOptions emcap_opt = opt;
    if (emcap_opt.clockGhz == 0.0)
        emcap_opt.clockGhz = reader.info().clockHz / 1e9;
    if (emcap_opt.deviceName.empty())
        emcap_opt.deviceName = reader.info().deviceName;
    if (emcap_opt.quantizeBits == 0 &&
        reader.info().codec == store::SampleCodec::QuantI16)
        emcap_opt.quantizeBits = reader.info().quantBits;

    store::WriterStats stats;
    std::string write_error;
    if (!store::writeCapture(out, series,
                             writerOptions(emcap_opt,
                                           series.sampleRateHz),
                             &stats, &write_error)) {
        std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                     write_error.c_str());
        return 1;
    }
    std::printf("wrote %s: %llu samples in %llu chunks (finalized)\n",
                out.c_str(),
                static_cast<unsigned long long>(stats.samples),
                static_cast<unsigned long long>(stats.chunks));
    return 0;
}

int
cut(const std::string &in, const std::string &out,
    const OutputOptions &opt)
{
    if (!opt.haveStart || !opt.haveCount || opt.numSamples == 0) {
        std::fprintf(stderr,
                     "cut needs --start-sample and --num-samples\n");
        return 2;
    }
    store::CaptureReader reader;
    std::string error;
    if (!reader.open(in, &error)) {
        std::fprintf(stderr, "%s: %s\n", in.c_str(), error.c_str());
        return 1;
    }

    dsp::TimeSeries slice;
    slice.sampleRateHz = reader.info().sampleRateHz;
    if (!reader.readRange(opt.startSample, opt.numSamples,
                          slice.samples, &error)) {
        std::fprintf(stderr, "%s: %s\n", in.c_str(), error.c_str());
        return 1;
    }

    OutputOptions emcap_opt = opt;
    if (emcap_opt.clockGhz == 0.0)
        emcap_opt.clockGhz = reader.info().clockHz / 1e9;
    if (emcap_opt.deviceName.empty())
        emcap_opt.deviceName = reader.info().deviceName;
    // Preserve the source quantisation unless the caller re-chose it.
    if (emcap_opt.quantizeBits == 0 &&
        reader.info().codec == store::SampleCodec::QuantI16)
        emcap_opt.quantizeBits = reader.info().quantBits;

    store::WriterStats stats;
    if (!store::writeCapture(out, slice,
                             writerOptions(emcap_opt,
                                           slice.sampleRateHz),
                             &stats)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s: samples [%llu, %llu) in %llu chunks\n",
                out.c_str(),
                static_cast<unsigned long long>(opt.startSample),
                static_cast<unsigned long long>(opt.startSample +
                                                opt.numSamples),
                static_cast<unsigned long long>(stats.chunks));
    return 0;
}

int
spoolCmd(int argc, char **argv)
{
    const std::string sub = argv[2];
    if (argc < 4) {
        std::fprintf(stderr, "spool %s needs a directory\n",
                     sub.c_str());
        return 2;
    }
    serve::ResultSpool spool;
    serve::ResultSpool::Options options;
    options.dir = argv[3];
    std::string error;
    if (!spool.open(options, &error)) {
        std::fprintf(stderr, "cannot open spool %s: %s\n", argv[3],
                     error.c_str());
        return 1;
    }

    if (sub == "list") {
        const auto &rec = spool.recovery();
        std::printf("spool %s: %llu result(s) in %llu segment(s), "
                    "%llu acked, %llu torn record(s) skipped\n",
                    argv[3],
                    static_cast<unsigned long long>(rec.results),
                    static_cast<unsigned long long>(rec.segments),
                    static_cast<unsigned long long>(rec.acked),
                    static_cast<unsigned long long>(rec.tornRecords));
        for (const auto &entry : spool.list())
            std::printf("%s  status=%u  %u bytes  t=%llu%s\n",
                        serve::sessionIdToHex(entry.id).c_str(),
                        entry.status, entry.payloadBytes,
                        static_cast<unsigned long long>(
                            entry.unixMillis),
                        entry.acked ? "  (acked)" : "");
        return 0;
    }
    if (sub == "gc") {
        const uint64_t removed = spool.gc(&error);
        if (!error.empty()) {
            std::fprintf(stderr, "spool gc: %s\n", error.c_str());
            return 1;
        }
        std::printf("removed %llu segment(s)\n",
                    static_cast<unsigned long long>(removed));
        return 0;
    }
    if (sub == "fetch" || sub == "ack") {
        if (argc < 5) {
            std::fprintf(stderr, "spool %s needs a session id\n",
                         sub.c_str());
            return 2;
        }
        serve::SessionId id;
        if (!serve::sessionIdFromHex(argv[4], id)) {
            std::fprintf(stderr,
                         "bad session id '%s' (expect 32 hex "
                         "digits)\n",
                         argv[4]);
            return 2;
        }
        if (sub == "ack") {
            if (!spool.ack(id, &error)) {
                std::fprintf(stderr, "spool ack: %s\n", error.c_str());
                return 1;
            }
            std::printf("acked %s\n", argv[4]);
            return 0;
        }
        uint32_t status = 0;
        std::vector<uint8_t> payload;
        if (!spool.fetch(id, status, payload, &error)) {
            std::fprintf(stderr, "spool fetch: %s\n", error.c_str());
            return 1;
        }
        serve::DecodedReport report;
        if (!serve::decodeReportPayload(payload, report, &error)) {
            std::fprintf(stderr, "spool fetch: %s\n", error.c_str());
            return 1;
        }
        std::fputs(report.reportText.c_str(), stdout);
        // Exit code carries the report status, same as --push.
        return static_cast<int>(status);
    }
    std::fprintf(stderr, "unknown spool subcommand: %s\n",
                 sub.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // Observability flags are accepted anywhere on the command line
    // and stripped before command dispatch so the per-command option
    // parsers never see them.
    tools::ObsCli obs_cli;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (obs_cli.parseArg(argc, argv, i))
            continue;
        args.push_back(argv[i]);
    }
    argc = static_cast<int>(args.size());
    argv = args.data();

    const int rc = [&]() -> int {
        EMPROF_OBS_STAGE("tool.run");
        if (argc < 3) {
            usage(argv[0]);
            return 2;
        }
        const std::string command = argv[1];

        if (command == "inspect")
            return inspect(argv[2]);
        if (command == "verify")
            return verify(argv[2]);
        if (command == "spool")
            return spoolCmd(argc, argv);

        if (command == "recover") {
            // The optional second path is the output; options may
            // follow either form.
            std::string out;
            int first_option = 3;
            if (argc >= 4 && std::strncmp(argv[3], "--", 2) != 0) {
                out = argv[3];
                first_option = 4;
            }
            OutputOptions opt;
            if (parseOptions(argc, argv, first_option, opt) != 0)
                return 2;
            return recover(argv[2], out, opt);
        }

        if (command == "convert" || command == "cut") {
            if (argc < 4) {
                usage(argv[0]);
                return 2;
            }
            OutputOptions opt;
            if (parseOptions(argc, argv, 4, opt) != 0)
                return 2;
            return command == "convert" ? convert(argv[2], argv[3], opt)
                                        : cut(argv[2], argv[3], opt);
        }

        std::fprintf(stderr, "unknown command: %s\n", command.c_str());
        usage(argv[0]);
        return 2;
    }();
    if (!obs_cli.finish() && rc == 0)
        return 1;
    return rc;
}
