/**
 * @file
 * Shared observability plumbing for the CLI tools.
 *
 * Every tool accepts the same two flags:
 *
 *   --metrics-out <file.json>   scrape the metrics registry on exit
 *   --trace-out <file.json>     dump spans as Chrome trace JSON
 *
 * Passing either flag flips the process-wide observability switch on
 * (it defaults to off, so an uninstrumented run pays only one relaxed
 * atomic load per hook).  The files are written by finish(), which the
 * tool calls once on the way out — including error exits, so a failed
 * run still leaves its partial metrics behind for diagnosis.
 */

#ifndef EMPROF_TOOLS_OBS_CLI_HPP
#define EMPROF_TOOLS_OBS_CLI_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace emprof::tools {

class ObsCli {
  public:
    /**
     * Consume `argv[i]` if it is an observability flag (advancing @p i
     * past the flag's value).  Returns false for unrelated arguments.
     * Exits with status 2 on a flag with a missing value, matching the
     * tools' handling of their own flags.
     */
    bool
    parseArg(int argc, char **argv, int &i)
    {
        const std::string arg = argv[i];
        if (arg != "--metrics-out" && arg != "--trace-out")
            return false;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            std::exit(2);
        }
        (arg == "--metrics-out" ? metricsPath_ : tracePath_) = argv[++i];
        enable();
        return true;
    }

    /** Flip the process-wide observability switch on. */
    static void
    enable()
    {
        obs::MetricsRegistry::setEnabled(true);
        obs::Tracer::setEnabled(true);
    }

    bool
    enabled() const
    {
        return !metricsPath_.empty() || !tracePath_.empty();
    }

    /**
     * Write whichever outputs were requested.  Returns false after
     * printing a diagnostic if any write fails; a tool that was
     * otherwise successful should turn that into a non-zero exit.
     */
    bool
    finish() const
    {
        bool ok = true;
        std::string error;
        if (!metricsPath_.empty()) {
            if (obs::writeMetricsJson(metricsPath_, &error)) {
                std::printf("wrote metrics to %s\n",
                            metricsPath_.c_str());
            } else {
                std::fprintf(stderr, "%s\n", error.c_str());
                ok = false;
            }
        }
        if (!tracePath_.empty()) {
            if (obs::writeTraceJson(tracePath_, &error)) {
                std::printf("wrote trace to %s\n", tracePath_.c_str());
            } else {
                std::fprintf(stderr, "%s\n", error.c_str());
                ok = false;
            }
        }
        return ok;
    }

    /** Usage text block shared by every tool's --help. */
    static constexpr const char *kUsage =
        "observability:\n"
        "  --metrics-out <path>  write pipeline metrics JSON on exit\n"
        "  --trace-out <path>    write Chrome trace JSON on exit\n"
        "                        (load in chrome://tracing or Perfetto)\n";

  private:
    std::string metricsPath_;
    std::string tracePath_;
};

} // namespace emprof::tools

#endif // EMPROF_TOOLS_OBS_CLI_HPP
