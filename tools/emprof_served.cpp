/**
 * @file
 * emprof_served — the EMPROF ingest daemon.
 *
 * Accepts concurrent EMCAP capture uploads over unix and/or TCP
 * sockets (EMFR framing, see src/serve/frame.hpp), analyses each
 * session incrementally on a shared thread pool, and replies with a
 * per-session event report whose status carries emprof_analyze's exit
 * semantics (0 ok, 3 degraded).  Runs until SIGINT/SIGTERM, then
 * shuts down gracefully: in-flight sessions are answered, late ones
 * get a typed Shutdown error.
 *
 * The same binary doubles as the fleet operator's probe:
 *
 *     emprof_served --listen unix:/run/emprof.sock          # serve
 *     emprof_served --scrape unix:/run/emprof.sock          # metrics
 *     emprof_served --push capture.emcap --to tcp:host:7600 # one shot
 *
 * --push prints the returned report and exits with the report status,
 * so `emprof_served --push x.emcap --to ... ; echo $?` behaves like
 * running emprof_analyze on the same capture locally.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "cli_parse.hpp"
#include "common/thread_pool.hpp"
#include "obs_cli.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace emprof;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --listen <endpoint> [options]\n"
        "       %s --scrape <endpoint>\n"
        "       %s --healthz <endpoint>\n"
        "       %s --push <capture.emcap> --to <endpoint> "
        "[--resilient]\n"
        "\n"
        "endpoints: unix:/path/to.sock | tcp:host:port "
        "(bare path = unix)\n"
        "\n"
        "serve options:\n"
        "  --listen <endpoint>   listen here (repeatable: one unix +\n"
        "                        one tcp listener)\n"
        "  --threads <n>         analysis workers (default: cores)\n"
        "  --max-sessions <n>    concurrent session cap "
        "(default 64)\n"
        "  --session-buffer <sz> per-session queue budget before\n"
        "                        backpressure, e.g. 8Mi (default)\n"
        "  --span-samples <n>    analysis span length (default auto)\n"
        "  --resilient           enable the signal-quality layer for\n"
        "                        every session (clients can also ask\n"
        "                        per session via the Open flag)\n"
        "  --spool-dir <dir>     durable result spool: every finished\n"
        "                        report is fsync'd here before the\n"
        "                        reply, and survives daemon restarts\n"
        "  --spool-retain <n>    live results kept in the spool before\n"
        "                        the oldest expire (default 4096)\n"
        "  --resume-ttl <dur>    how long a dropped session's state is\n"
        "                        parked for resume, e.g. 300s "
        "(default)\n"
        "  --status-every <dur>  print a status line this often,\n"
        "                        e.g. 30s (default: off)\n"
        "\n"
        "overload options (each 0/omitted = disabled; see DESIGN.md "
        "§17):\n"
        "  --idle-timeout <dur>  shed a session after this long with\n"
        "                        no upload progress (typed IdleTimeout;\n"
        "                        the session is parked for resume)\n"
        "  --session-deadline <dur>  hard wall-clock cap per session\n"
        "  --min-rate <sz>       minimum upload rate per second, e.g.\n"
        "                        4Ki; slower senders are shed\n"
        "  --min-rate-window <dur>  rate measurement window "
        "(default 10s)\n"
        "  --soft-queue <sz>     aggregate queue bytes past which new\n"
        "                        sessions get a typed RetryAfter\n"
        "  --hard-queue <sz>     ... past which sessions are shed\n"
        "  --soft-sessions <n>   active sessions soft watermark\n"
        "  --hard-sessions <n>   active sessions hard watermark\n"
        "  --fd-budget <n>       connection budget (hard)\n"
        "\n"
        "push options:\n"
        "  --chunk-bytes <sz>    Data frame size, e.g. 256Ki\n"
        "  --push-retries <n>    reconnect attempts on a dropped\n"
        "                        connection (default 3; 1 = no retry)\n"
        "\n"
        "exit codes: 0 ok, 1 error, 2 bad usage, 7 connection lost\n"
        "(resumable — retries exhausted); --push propagates the\n"
        "served report status (3 = degraded result); --healthz: 0\n"
        "live, 4 backoff, 5 shedding, 6 draining\n"
        "\n%s",
        argv0, argv0, argv0, argv0, tools::ObsCli::kUsage);
}

const char *
argText(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

int
runScrape(const std::string &endpointSpec)
{
    serve::Endpoint endpoint;
    std::string error;
    if (!serve::parseEndpoint(endpointSpec, endpoint, &error)) {
        std::fprintf(stderr, "--scrape: %s\n", error.c_str());
        return 2;
    }
    std::string text;
    if (!serve::Client::scrape(endpoint, text, &error)) {
        std::fprintf(stderr, "scrape failed: %s\n", error.c_str());
        return 1;
    }
    std::fputs(text.c_str(), stdout);
    return 0;
}

int
runHealthz(const std::string &endpointSpec)
{
    serve::Endpoint endpoint;
    std::string error;
    if (!serve::parseEndpoint(endpointSpec, endpoint, &error)) {
        std::fprintf(stderr, "--healthz: %s\n", error.c_str());
        return 2;
    }
    serve::HealthState state;
    if (!serve::Client::health(endpoint, state, &error)) {
        std::fprintf(stderr, "healthz failed: %s\n", error.c_str());
        return 1;
    }
    switch (state) {
    case serve::HealthState::Live:
        std::puts("live");
        return 0;
    case serve::HealthState::Backoff:
        std::puts("backoff");
        return 4;
    case serve::HealthState::Shedding:
        std::puts("shedding");
        return 5;
    case serve::HealthState::Draining:
        std::puts("draining");
        return 6;
    }
    return 1;
}

int
runPush(const std::string &capturePath, const std::string &endpointSpec,
        bool resilient, std::size_t chunkBytes, uint32_t pushRetries)
{
    serve::Endpoint endpoint;
    std::string error;
    if (endpointSpec.empty()) {
        std::fprintf(stderr, "--push needs --to <endpoint>\n");
        return 2;
    }
    if (!serve::parseEndpoint(endpointSpec, endpoint, &error)) {
        std::fprintf(stderr, "--to: %s\n", error.c_str());
        return 2;
    }
    serve::PushOptions options;
    options.resilient = resilient;
    options.uploadChunkBytes = chunkBytes;
    options.maxAttempts = pushRetries;
    const serve::PushResult result =
        serve::pushCaptureResumable(endpoint, capturePath, options);
    if (!result.ok) {
        if (result.connectionLost) {
            std::fprintf(stderr,
                         "push failed: connection lost (resumable) "
                         "after %u attempts: %s\n",
                         result.attempts, result.error.c_str());
            return 7;
        }
        std::fprintf(stderr, "push failed: %s\n", result.error.c_str());
        return 1;
    }
    if (result.resumes > 0 || result.servedFromSpool)
        std::fprintf(stderr,
                     "session %s recovered: %u resume(s), %llu bytes "
                     "replayed%s\n",
                     serve::sessionIdToHex(result.sessionId).c_str(),
                     result.resumes,
                     static_cast<unsigned long long>(
                         result.replayedBytes),
                     result.servedFromSpool ? ", report served from "
                                              "the spool"
                                            : "");
    std::fputs(result.report.reportText.c_str(), stdout);
    if (result.report.status != 0)
        std::fprintf(stderr,
                     "server flagged the result (status %u)\n",
                     result.report.status);
    return static_cast<int>(result.report.status);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unix_listen, tcp_listen;
    std::string scrape_endpoint, healthz_endpoint;
    std::string push_capture, push_to;
    bool resilient = false;
    double status_every_s = 0.0;
    std::size_t chunk_bytes = 256 * 1024;
    uint32_t push_retries = 3;
    tools::ObsCli obs_cli;
    serve::ServerConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (obs_cli.parseArg(argc, argv, i))
            continue;
        if (arg == "--listen") {
            const std::string spec = argText(argc, argv, i);
            serve::Endpoint ep;
            std::string error;
            if (!serve::parseEndpoint(spec, ep, &error)) {
                std::fprintf(stderr, "--listen: %s\n", error.c_str());
                return 2;
            }
            if (ep.tcp)
                config.tcpPort = ep.port;
            else
                config.unixPath = ep.unixPath;
        }
        else if (arg == "--scrape")
            scrape_endpoint = argText(argc, argv, i);
        else if (arg == "--healthz")
            healthz_endpoint = argText(argc, argv, i);
        else if (arg == "--push")
            push_capture = argText(argc, argv, i);
        else if (arg == "--to")
            push_to = argText(argc, argv, i);
        else if (arg == "--threads")
            config.threads = static_cast<std::size_t>(
                tools::parseU64Flag("--threads",
                                    argText(argc, argv, i), 1, 4096));
        else if (arg == "--max-sessions")
            config.maxSessions = static_cast<std::size_t>(
                tools::parseU64Flag("--max-sessions",
                                    argText(argc, argv, i), 1,
                                    1u << 20));
        else if (arg == "--session-buffer")
            config.sessionBufferBytes =
                static_cast<std::size_t>(tools::parseSizeFlag(
                    "--session-buffer", argText(argc, argv, i),
                    64 * 1024, uint64_t{16} << 30));
        else if (arg == "--span-samples")
            config.spanSamples = static_cast<std::size_t>(
                tools::parseU64Flag("--span-samples",
                                    argText(argc, argv, i), 256,
                                    uint64_t{1} << 32));
        else if (arg == "--chunk-bytes")
            chunk_bytes = static_cast<std::size_t>(tools::parseSizeFlag(
                "--chunk-bytes", argText(argc, argv, i), 16,
                serve::kMaxFramePayload));
        else if (arg == "--push-retries")
            push_retries = static_cast<uint32_t>(
                tools::parseU64Flag("--push-retries",
                                    argText(argc, argv, i), 1, 1000));
        else if (arg == "--spool-dir")
            config.spoolDir = argText(argc, argv, i);
        else if (arg == "--spool-retain")
            config.spoolRetain = tools::parseU64Flag(
                "--spool-retain", argText(argc, argv, i), 1,
                uint64_t{1} << 32);
        else if (arg == "--resume-ttl")
            config.resumeTtlSeconds = tools::parseDurationFlag(
                "--resume-ttl", argText(argc, argv, i), 1.0,
                7 * 86400.0);
        else if (arg == "--idle-timeout")
            config.idleTimeoutSeconds = tools::parseDurationFlag(
                "--idle-timeout", argText(argc, argv, i), 0.1,
                86400.0);
        else if (arg == "--session-deadline")
            config.sessionDeadlineSeconds = tools::parseDurationFlag(
                "--session-deadline", argText(argc, argv, i), 0.1,
                7 * 86400.0);
        else if (arg == "--min-rate")
            config.minRateBytesPerSec =
                static_cast<double>(tools::parseSizeFlag(
                    "--min-rate", argText(argc, argv, i), 1,
                    uint64_t{1} << 40));
        else if (arg == "--min-rate-window")
            config.minRateWindowSeconds = tools::parseDurationFlag(
                "--min-rate-window", argText(argc, argv, i), 0.1,
                3600.0);
        else if (arg == "--soft-queue")
            config.watermarks.softQueueBytes =
                static_cast<std::size_t>(tools::parseSizeFlag(
                    "--soft-queue", argText(argc, argv, i), 1,
                    uint64_t{1} << 40));
        else if (arg == "--hard-queue")
            config.watermarks.hardQueueBytes =
                static_cast<std::size_t>(tools::parseSizeFlag(
                    "--hard-queue", argText(argc, argv, i), 1,
                    uint64_t{1} << 40));
        else if (arg == "--soft-sessions")
            config.watermarks.softSessions = static_cast<std::size_t>(
                tools::parseU64Flag("--soft-sessions",
                                    argText(argc, argv, i), 1,
                                    1u << 20));
        else if (arg == "--hard-sessions")
            config.watermarks.hardSessions = static_cast<std::size_t>(
                tools::parseU64Flag("--hard-sessions",
                                    argText(argc, argv, i), 1,
                                    1u << 20));
        else if (arg == "--fd-budget")
            config.watermarks.fdBudget = static_cast<std::size_t>(
                tools::parseU64Flag("--fd-budget",
                                    argText(argc, argv, i), 8,
                                    1u << 20));
        else if (arg == "--resilient")
            resilient = true;
        else if (arg == "--status-every")
            status_every_s = tools::parseDurationFlag(
                "--status-every", argText(argc, argv, i), 0.1, 86400.0);
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (!scrape_endpoint.empty())
        return runScrape(scrape_endpoint);
    if (!healthz_endpoint.empty())
        return runHealthz(healthz_endpoint);
    if (!push_capture.empty())
        return runPush(push_capture, push_to, resilient, chunk_bytes,
                       push_retries);

    if (config.unixPath.empty() && config.tcpPort < 0) {
        std::fprintf(stderr, "nothing to do: need --listen, --scrape, "
                             "--healthz or --push\n");
        usage(argv[0]);
        return 2;
    }

    config.analysis.signal.enabled = resilient;
    serve::Server server(std::move(config));
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "cannot start server: %s\n",
                     error.c_str());
        return 1;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (!server.running()) {
        std::fprintf(stderr, "server failed to start\n");
        return 1;
    }
    if (server.tcpPort() >= 0)
        std::printf("listening on tcp:127.0.0.1:%d\n",
                    server.tcpPort());
    std::fflush(stdout);

    double since_status = 0.0;
    while (g_stop == 0) {
        ::usleep(100 * 1000);
        since_status += 0.1;
        if (status_every_s > 0.0 && since_status >= status_every_s) {
            since_status = 0.0;
            const serve::ServerStats s = server.stats();
            std::printf("sessions: %llu active, %llu accepted, "
                        "%llu completed, %llu rejected; %llu bytes "
                        "ingested\n",
                        static_cast<unsigned long long>(
                            s.sessionsActive),
                        static_cast<unsigned long long>(
                            s.sessionsAccepted),
                        static_cast<unsigned long long>(
                            s.sessionsCompleted),
                        static_cast<unsigned long long>(
                            s.sessionsRejected),
                        static_cast<unsigned long long>(
                            s.bytesIngested));
            std::fflush(stdout);
        }
    }

    std::printf("shutting down...\n");
    server.stop();
    const serve::ServerStats s = server.stats();
    std::printf("served %llu sessions (%llu rejected)\n",
                static_cast<unsigned long long>(s.sessionsCompleted),
                static_cast<unsigned long long>(s.sessionsRejected));
    if (!obs_cli.finish())
        return 1;
    return 0;
}
