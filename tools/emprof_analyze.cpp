/**
 * @file
 * emprof_analyze — run EMPROF on a recorded signal file.
 *
 * This is the tool you would point at a *real* capture: record the
 * device's emanation around its clock frequency with any SDR, save the
 * IQ or magnitude samples (raw float32 works, e.g. a GNU Radio file
 * sink), and analyse:
 *
 *   emprof_analyze capture.emcap --threads 8
 *   emprof_analyze capture.emsig --clock-ghz 1.008
 *   emprof_analyze iq.f32 --raw-iq --rate-mhz 40 --clock-ghz 1.008
 *
 * The container is detected from the file's magic bytes: EMCAP
 * captures (emprof_capture/emprof_store) are decoded chunk-by-chunk on
 * the analysis thread pool, .emsig is the legacy one-blob container,
 * and anything unrecognised must be explicitly declared raw with
 * --raw-f32/--raw-iq — a garbage file is an error, not a profile.
 *
 * Options tune the Sec. IV parameters (thresholds, duration floor,
 * normalisation window); --section isolates the part of the signal
 * between marker loops (Sec. V-B); --histogram and --boot add the
 * Fig. 11 / Fig. 13 views; --csv exports events for plotting.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_parse.hpp"
#include "common/io/checked_file.hpp"
#include "common/thread_pool.hpp"
#include "dsp/signal_io.hpp"
#include "obs/stage_profiler.hpp"
#include "obs_cli.hpp"
#include "profiler/boot_profile.hpp"
#include "profiler/marker.hpp"
#include "profiler/parallel_analyzer.hpp"
#include "profiler/profiler.hpp"
#include "profiler/report.hpp"
#include "store/capture_reader.hpp"

using namespace emprof;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <signal-file> [options]\n"
        "\n"
        "input (.emcap and .emsig containers are auto-detected from\n"
        "their magic bytes; anything else must be declared raw):\n"
        "  --raw-f32           raw float32 magnitude samples\n"
        "  --raw-iq            raw interleaved float32 I/Q samples\n"
        "  --rate-mhz <f>      sample rate for raw inputs (required)\n"
        "\n"
        "target:\n"
        "  --clock-ghz <f>     processor clock (default: the capture's\n"
        "                      recorded clock, else 1.008)\n"
        "\n"
        "detector (defaults per the paper, Sec. IV):\n"
        "  --enter <f>         dip entry threshold   (default 0.22)\n"
        "  --exit <f>          dip exit threshold    (default 0.38)\n"
        "  --min-stall-ns <f>  duration threshold    (default 60)\n"
        "  --refresh-ns <f>    refresh classifier    (default 1200)\n"
        "  --window-ms <f>     normalisation window  (default 4)\n"
        "\n"
        "resilience (impaired/real-world captures):\n"
        "  --resilient         adaptive envelope recalibration, segment\n"
        "                      quarantine (clipping/dropout/low-SNR)\n"
        "                      and per-event confidence; quarantined\n"
        "                      spans emit no events and the report\n"
        "                      gains a coverage figure\n"
        "\n"
        "performance:\n"
        "  --threads <n>       analysis worker threads; events are\n"
        "                      bit-identical to single-threaded\n"
        "                      (default: hardware concurrency, 1\n"
        "                      forces the streaming path)\n"
        "  --fast-math-simd    allow the AVX2 batch kernel to\n"
        "                      normalise in single precision (~2\n"
        "                      float ULP; a razor-edge dip boundary\n"
        "                      may move by one sample)\n"
        "\n"
        "recovery:\n"
        "  --recover           open a truncated/unfinalized EMCAP\n"
        "                      capture by rebuilding the chunk index\n"
        "                      from per-chunk CRCs (see also\n"
        "                      `emprof_store recover`)\n"
        "\n"
        "views:\n"
        "  --section           analyse only between marker loops\n"
        "  --histogram         print the stall-latency histogram\n"
        "  --boot <bucket-us>  print a boot-style rate-vs-time profile\n"
        "  --events-csv <path> write one line per detected stall\n"
        "  --verbose           print a per-stage timing summary\n"
        "\n"
        "exit codes: 0 ok, 1 error, 2 bad usage, 3 degraded result\n"
        "(recovered capture or signal coverage below 100%%)\n"
        "\n%s",
        argv0, tools::ObsCli::kUsage);
}

const char *
argText(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

double
argDouble(int argc, char **argv, int &i, double lo, double hi)
{
    const char *flag = argv[i];
    return tools::parseDoubleFlag(flag, argText(argc, argv, i), lo, hi);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }

    std::string path = argv[1];
    bool raw_f32 = false, raw_iq = false;
    bool use_section = false, histogram = false;
    bool clock_set = false, recover = false;
    double rate_mhz = 0.0, clock_ghz = 1.008, boot_bucket_us = 0.0;
    std::size_t threads = common::ThreadPool::hardwareThreads();
    std::string events_csv;
    bool verbose = false, fast_math_simd = false, threads_set = false;
    tools::ObsCli obs_cli;
    profiler::EmProfConfig config;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (obs_cli.parseArg(argc, argv, i))
            continue;
        if (arg == "--raw-f32")
            raw_f32 = true;
        else if (arg == "--raw-iq")
            raw_iq = true;
        else if (arg == "--rate-mhz")
            rate_mhz = argDouble(argc, argv, i, 1e-6, 1e6);
        else if (arg == "--clock-ghz") {
            clock_ghz = argDouble(argc, argv, i, 1e-3, 1e3);
            clock_set = true;
        }
        else if (arg == "--enter")
            config.enterThreshold = argDouble(argc, argv, i, 0.0, 10.0);
        else if (arg == "--exit")
            config.exitThreshold = argDouble(argc, argv, i, 0.0, 10.0);
        else if (arg == "--min-stall-ns")
            config.minStallNs = argDouble(argc, argv, i, 0.0, 1e12);
        else if (arg == "--refresh-ns")
            config.refreshStallNs = argDouble(argc, argv, i, 0.0, 1e12);
        else if (arg == "--window-ms")
            config.normWindowSeconds =
                argDouble(argc, argv, i, 1e-6, 1e6) * 1e-3;
        else if (arg == "--threads") {
            threads = static_cast<std::size_t>(tools::parseU64Flag(
                "--threads", argText(argc, argv, i), 1, 4096));
            threads_set = true;
        }
        else if (arg == "--fast-math-simd")
            fast_math_simd = true;
        else if (arg == "--recover")
            recover = true;
        else if (arg == "--resilient")
            config.signal.enabled = true;
        else if (arg == "--section")
            use_section = true;
        else if (arg == "--histogram")
            histogram = true;
        else if (arg == "--boot")
            boot_bucket_us = argDouble(argc, argv, i, 1e-3, 1e9);
        else if (arg == "--events-csv")
            events_csv = argText(argc, argv, i);
        else if (arg == "--verbose")
            verbose = true;
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (verbose)
        tools::ObsCli::enable();

    store::CaptureReader reader;
    dsp::TimeSeries signal;
    bool emcap_direct = false;
    bool recovered_capture = false;

    {
    EMPROF_OBS_STAGE("tool.load");
    const dsp::SignalFileType ftype = dsp::sniffSignalFile(path);
    if (raw_f32 || raw_iq) {
        if (rate_mhz <= 0.0) {
            std::fprintf(stderr,
                         "--rate-mhz is required for raw inputs\n");
            return 2;
        }
        common::io::IoError io_error;
        if (!dsp::loadRawF32(path, rate_mhz * 1e6, raw_iq, signal,
                             &io_error)) {
            std::fprintf(stderr, "%s\n", io_error.describe().c_str());
            return 1;
        }
    } else if (ftype == dsp::SignalFileType::Emcap || recover) {
        std::string err;
        bool opened;
        if (recover) {
            store::RecoveryReport rec;
            opened = reader.openRecovered(path, &rec, &err);
            recovered_capture = opened;
            if (opened)
                std::printf(
                    "recovered %llu chunks / %llu samples; dropped "
                    "%llu tail bytes%s%s\n",
                    static_cast<unsigned long long>(rec.salvagedChunks),
                    static_cast<unsigned long long>(
                        rec.salvagedSamples),
                    static_cast<unsigned long long>(
                        rec.droppedTailBytes),
                    rec.stopReason.empty() ? "" : ": ",
                    rec.stopReason.c_str());
        } else {
            opened = reader.open(path, &err);
        }
        if (!opened) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
            return 1;
        }
        const auto &info = reader.info();
        if (!clock_set && info.clockHz > 0.0)
            clock_ghz = info.clockHz / 1e9;
        std::printf("EMCAP capture: %llu samples, %zu chunks, "
                    "codec %s, device '%s'\n",
                    static_cast<unsigned long long>(info.totalSamples),
                    reader.chunkCount(),
                    info.codec == store::SampleCodec::F32
                        ? "f32 (lossless)"
                        : "i16 quantised",
                    info.deviceName.c_str());
        // Marker search and the streaming path both need the whole
        // series in memory; otherwise chunks are decoded on the pool.
        if (use_section || threads <= 1) {
            if (!reader.readAll(signal, &err)) {
                std::fprintf(stderr, "%s: %s\n", path.c_str(),
                             err.c_str());
                return 1;
            }
        } else {
            emcap_direct = true;
        }
    } else if (ftype == dsp::SignalFileType::Emsig) {
        common::io::IoError io_error;
        if (!dsp::loadSignal(path, signal, &io_error)) {
            std::fprintf(stderr, "%s\n", io_error.describe().c_str());
            return 1;
        }
    } else {
        std::fprintf(stderr,
                     "%s: unrecognised magic — not an .emcap/.emsig "
                     "capture; pass --raw-f32 or --raw-iq (with "
                     "--rate-mhz) if this is a headerless raw dump\n",
                     path.c_str());
        return 1;
    }
    }

    const double sample_rate =
        emcap_direct ? reader.info().sampleRateHz : signal.sampleRateHz;
    uint64_t total_samples =
        emcap_direct ? reader.info().totalSamples : signal.size();
    if (total_samples == 0) {
        std::fprintf(stderr, "no samples in %s\n", path.c_str());
        return 1;
    }

    std::printf("loaded %llu samples at %.3f MHz (%.3f ms)\n",
                static_cast<unsigned long long>(total_samples),
                sample_rate / 1e6,
                static_cast<double>(total_samples) / sample_rate * 1e3);

    if (use_section && !emcap_direct) {
        const auto sections = profiler::findMarkerSections(signal);
        if (sections.measured.empty()) {
            std::fprintf(stderr,
                         "no marker-delimited section found; "
                         "analysing the whole signal\n");
        } else {
            std::printf("markers found; analysing section [%llu, %llu)\n",
                        static_cast<unsigned long long>(
                            sections.measured.begin),
                        static_cast<unsigned long long>(
                            sections.measured.end));
            signal = profiler::slice(signal, sections.measured);
            total_samples = signal.size();
        }
    }

    config.clockHz = clock_ghz * 1e9;
    if (sample_rate > 0.0)
        config.sampleRateHz = sample_rate;
    std::string config_error;
    if (!config.validate(&config_error)) {
        std::fprintf(stderr, "invalid configuration: %s\n",
                     config_error.c_str());
        return 2;
    }
    profiler::ProfileResult result;
    {
        EMPROF_OBS_STAGE("tool.analyze");
        profiler::ParallelAnalyzerConfig pcfg;
        pcfg.threads = threads;
        pcfg.fastMathSimd = fast_math_simd;
        if (emcap_direct) {
            std::string err;
            if (!profiler::analyzeCaptureParallel(reader, config, result,
                                                  pcfg, &err)) {
                std::fprintf(stderr, "analysis failed: %s\n",
                             err.c_str());
                return 1;
            }
        } else if (threads_set && threads <= 1 && !fast_math_simd) {
            // `--threads 1` is the documented escape hatch to the
            // plain streaming reference.
            result = profiler::EmProf::analyze(signal, config);
        } else {
            // The analyzer picks the decomposition (and the batch
            // kernel when the CPU has it — also worthwhile on one
            // worker); short inputs fall back to streaming inside.
            result = profiler::analyzeParallel(signal, config, pcfg);
        }
    }
    int rc = 0;
    {
    EMPROF_OBS_STAGE("tool.report");
    std::printf("\n%s", result.report.toText("EMPROF report:").c_str());

    if (histogram) {
        std::printf("\nstall-latency histogram:\n%s",
                    profiler::latencyHistogram(result.events)
                        .toText("cyc")
                        .c_str());
    }
    if (boot_bucket_us > 0.0) {
        const auto profile = profiler::makeBootProfile(
            result.events, sample_rate, total_samples,
            boot_bucket_us * 1e-6);
        std::printf("\nmiss rate over time:\n%s",
                    profile.toText().c_str());
    }
    if (!events_csv.empty()) {
        // Build the CSV in memory and hand it to the checked I/O layer
        // in one write: a full disk surfaces as a typed error instead
        // of a silently short file.
        std::string csv = "start_s,duration_ns,stall_cycles,kind,"
                          "confidence,level,level_confidence\n";
        char line[200];
        for (const auto &ev : result.events) {
            std::snprintf(line, sizeof(line),
                          "%.9f,%.1f,%.1f,%s,%.3f,%s,%.3f\n",
                          static_cast<double>(ev.startSample) /
                              sample_rate,
                          ev.durationNs, ev.stallCycles,
                          ev.kind ==
                                  profiler::StallKind::RefreshCoincident
                              ? "refresh"
                              : "miss",
                          ev.confidence,
                          profiler::serviceLevelName(ev.level),
                          ev.levelConfidence);
            csv += line;
        }
        common::io::CheckedFile f;
        if (!f.open(events_csv,
                    common::io::CheckedFile::Mode::WriteTruncate) ||
            !f.writeAll(csv.data(), csv.size(), "events csv") ||
            !f.close()) {
            std::fprintf(stderr, "%s\n", f.error().describe().c_str());
            rc = 1;
        } else {
            std::printf("\nwrote %zu events to %s\n",
                        result.events.size(), events_csv.c_str());
        }
    }
    }

    if (verbose) {
        const std::string stages = obs::stageSummaryLine();
        if (!stages.empty())
            std::printf("\n%s\n", stages.c_str());
    }
    if (!obs_cli.finish() && rc == 0)
        rc = 1;

    // Exit 3 flags a *degraded* (but successful) analysis: the capture
    // had to be salvaged, or part of the signal was quarantined.  CI
    // and scripts can treat it as "result present, trust with care".
    const bool degraded =
        recovered_capture ||
        (result.report.quality.enabled &&
         result.report.quality.coverageFraction < 1.0);
    if (rc == 0 && degraded)
        rc = 3;
    return rc;
}
