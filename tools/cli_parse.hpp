/**
 * @file
 * Strict numeric flag parsing shared by the emprof_* tools.
 *
 * std::atof silently turns "abc" into 0.0 and "1e999" into inf, which
 * then flows into thresholds and sample rates as a plausible-looking
 * config.  These helpers accept a value only if the whole string parses
 * and the result is finite and inside the flag's documented range;
 * anything else prints a diagnostic naming the flag and exits 2 (the
 * usage-error code), before any file is touched.
 */

#ifndef EMPROF_TOOLS_CLI_PARSE_HPP
#define EMPROF_TOOLS_CLI_PARSE_HPP

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emprof::tools {

[[noreturn]] inline void
badFlag(const char *flag, const char *text, const char *why)
{
    std::fprintf(stderr, "%s: invalid value '%s' (%s)\n", flag, text,
                 why);
    std::exit(2);
}

/** Parse a whole-string finite double in [lo, hi], or exit 2. */
inline double
parseDoubleFlag(const char *flag, const char *text, double lo, double hi)
{
    if (text == nullptr || *text == '\0')
        badFlag(flag, text == nullptr ? "" : text, "empty");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        badFlag(flag, text, "not a number");
    if (errno == ERANGE || !std::isfinite(value))
        badFlag(flag, text, "out of range for a double");
    if (value < lo || value > hi) {
        std::fprintf(stderr,
                     "%s: value %s outside the accepted range "
                     "[%g, %g]\n",
                     flag, text, lo, hi);
        std::exit(2);
    }
    return value;
}

/** Parse a whole-string base-10 uint64 in [lo, hi], or exit 2. */
inline uint64_t
parseU64Flag(const char *flag, const char *text, uint64_t lo,
             uint64_t hi)
{
    if (text == nullptr || *text == '\0')
        badFlag(flag, text == nullptr ? "" : text, "empty");
    // strtoull "accepts" a leading minus by wrapping modulo 2^64;
    // reject any sign explicitly.
    const char *p = text;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p == '-' || *p == '+')
        badFlag(flag, text, "must be an unsigned integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        badFlag(flag, text, "not an unsigned integer");
    if (errno == ERANGE)
        badFlag(flag, text, "out of range for a 64-bit integer");
    if (value < lo || value > hi) {
        std::fprintf(stderr,
                     "%s: value %s outside the accepted range "
                     "[%" PRIu64 ", %" PRIu64 "]\n",
                     flag, text, lo, hi);
        std::exit(2);
    }
    return value;
}

} // namespace emprof::tools

#endif // EMPROF_TOOLS_CLI_PARSE_HPP
