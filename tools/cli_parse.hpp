/**
 * @file
 * Strict numeric flag parsing shared by the emprof_* tools.
 *
 * std::atof silently turns "abc" into 0.0 and "1e999" into inf, which
 * then flows into thresholds and sample rates as a plausible-looking
 * config.  These helpers accept a value only if the whole string parses
 * and the result is finite and inside the flag's documented range;
 * anything else prints a diagnostic naming the flag and exits 2 (the
 * usage-error code), before any file is touched.
 */

#ifndef EMPROF_TOOLS_CLI_PARSE_HPP
#define EMPROF_TOOLS_CLI_PARSE_HPP

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emprof::tools {

[[noreturn]] inline void
badFlag(const char *flag, const char *text, const char *why)
{
    std::fprintf(stderr, "%s: invalid value '%s' (%s)\n", flag, text,
                 why);
    std::exit(2);
}

/** Parse a whole-string finite double in [lo, hi], or exit 2. */
inline double
parseDoubleFlag(const char *flag, const char *text, double lo, double hi)
{
    if (text == nullptr || *text == '\0')
        badFlag(flag, text == nullptr ? "" : text, "empty");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        badFlag(flag, text, "not a number");
    if (errno == ERANGE || !std::isfinite(value))
        badFlag(flag, text, "out of range for a double");
    if (value < lo || value > hi) {
        std::fprintf(stderr,
                     "%s: value %s outside the accepted range "
                     "[%g, %g]\n",
                     flag, text, lo, hi);
        std::exit(2);
    }
    return value;
}

/** Parse a whole-string base-10 uint64 in [lo, hi], or exit 2. */
inline uint64_t
parseU64Flag(const char *flag, const char *text, uint64_t lo,
             uint64_t hi)
{
    if (text == nullptr || *text == '\0')
        badFlag(flag, text == nullptr ? "" : text, "empty");
    // strtoull "accepts" a leading minus by wrapping modulo 2^64;
    // reject any sign explicitly.
    const char *p = text;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p == '-' || *p == '+')
        badFlag(flag, text, "must be an unsigned integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        badFlag(flag, text, "not an unsigned integer");
    if (errno == ERANGE)
        badFlag(flag, text, "out of range for a 64-bit integer");
    if (value < lo || value > hi) {
        std::fprintf(stderr,
                     "%s: value %s outside the accepted range "
                     "[%" PRIu64 ", %" PRIu64 "]\n",
                     flag, text, lo, hi);
        std::exit(2);
    }
    return value;
}

/**
 * Parse a byte size with an optional binary/decimal suffix — "64Mi",
 * "512Ki", "2G", "4096" — into bytes, in [lo, hi], or exit 2.
 *
 * Binary suffixes (Ki/Mi/Gi) are powers of 1024; bare K/M/G (and
 * their KB/MB/GB spellings) are powers of 1000.  Suffix letters are
 * case-insensitive ("64ki" == "64Ki"), EXCEPT a trailing lowercase
 * 'b': "64Kib" reads as kibiBITS, which is never what a byte-size
 * flag means, so it is rejected with a pointed message rather than
 * silently read as bytes.  A trailing "B" is accepted ("64MiB").
 */
inline uint64_t
parseSizeFlag(const char *flag, const char *text, uint64_t lo,
              uint64_t hi)
{
    if (text == nullptr || *text == '\0')
        badFlag(flag, text == nullptr ? "" : text, "empty");
    const char *p = text;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p == '-' || *p == '+')
        badFlag(flag, text, "must be an unsigned size");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text)
        badFlag(flag, text, "not a size");
    if (errno == ERANGE)
        badFlag(flag, text, "out of range for a 64-bit integer");

    uint64_t unit = 1;
    const char *suffix = end;
    const bool binary = suffix[0] != '\0' &&
                        (suffix[1] == 'i' || suffix[1] == 'I');
    switch (*suffix) {
    case '\0':
        break;
    case 'K':
    case 'k':
        unit = binary ? (uint64_t{1} << 10) : 1000u;
        break;
    case 'M':
    case 'm':
        unit = binary ? (uint64_t{1} << 20) : 1000000u;
        break;
    case 'G':
    case 'g':
        unit = binary ? (uint64_t{1} << 30) : 1000000000u;
        break;
    default:
        badFlag(flag, text,
                "unknown size suffix (use Ki/Mi/Gi or K/M/G)");
    }
    if (*suffix != '\0') {
        ++suffix;
        if (binary)
            ++suffix;
        if (*suffix == 'b')
            badFlag(flag, text,
                    "lowercase 'b' reads as bits, not bytes — write "
                    "e.g. 64Ki or 64KiB");
        if (*suffix == 'B')
            ++suffix;
        if (*suffix != '\0')
            badFlag(flag, text,
                    "unknown size suffix (use Ki/Mi/Gi or K/M/G)");
    }
    if (unit != 1 && value > UINT64_MAX / unit)
        badFlag(flag, text, "size overflows 64 bits");
    const uint64_t bytes = value * unit;
    if (bytes < lo || bytes > hi) {
        std::fprintf(stderr,
                     "%s: value %s outside the accepted range "
                     "[%" PRIu64 ", %" PRIu64 "] bytes\n",
                     flag, text, lo, hi);
        std::exit(2);
    }
    return bytes;
}

/**
 * Parse a duration with a unit suffix — "30s", "250ms", "90us",
 * "500ns", "2m" — into seconds, in [lo, hi] seconds, or exit 2.  A
 * bare number is taken as seconds.
 */
inline double
parseDurationFlag(const char *flag, const char *text, double lo,
                  double hi)
{
    if (text == nullptr || *text == '\0')
        badFlag(flag, text == nullptr ? "" : text, "empty");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text)
        badFlag(flag, text, "not a duration");
    if (errno == ERANGE || !std::isfinite(value))
        badFlag(flag, text, "out of range for a double");

    double unit = 1.0;
    if (std::strcmp(end, "") == 0 || std::strcmp(end, "s") == 0)
        unit = 1.0;
    else if (std::strcmp(end, "ms") == 0)
        unit = 1e-3;
    else if (std::strcmp(end, "us") == 0)
        unit = 1e-6;
    else if (std::strcmp(end, "ns") == 0)
        unit = 1e-9;
    else if (std::strcmp(end, "m") == 0)
        unit = 60.0;
    else
        badFlag(flag, text,
                "unknown duration suffix (use ns/us/ms/s/m)");
    const double seconds = value * unit;
    if (seconds < lo || seconds > hi) {
        std::fprintf(stderr,
                     "%s: value %s outside the accepted range "
                     "[%g, %g] seconds\n",
                     flag, text, lo, hi);
        std::exit(2);
    }
    return seconds;
}

} // namespace emprof::tools

#endif // EMPROF_TOOLS_CLI_PARSE_HPP
