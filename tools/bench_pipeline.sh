#!/usr/bin/env sh
# Build and run the end-to-end pipeline throughput benchmarks, leaving
# BENCH_pipeline.json and BENCH_impair.json in the repository root so
# the streaming vs. parallel perf trajectory — and the resilience
# layer's overhead — are tracked across PRs.
#
#   tools/bench_pipeline.sh [--samples N] [--runs N]
#
# Both benches default to 64 Mi samples and best-of-3 timed runs per
# mode (run-to-run variance lands in the JSON); pass --runs 5 on a
# noisy host.  BUILD_DIR overrides the build directory (default:
# build).
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
cmake --build "$BUILD_DIR" --target throughput_pipeline throughput_impair -j
"$BUILD_DIR/bench/throughput_pipeline" --json BENCH_pipeline.json "$@"
"$BUILD_DIR/bench/throughput_impair" --json BENCH_impair.json "$@"
