#!/usr/bin/env sh
# Build and run the end-to-end pipeline throughput benchmarks, leaving
# BENCH_pipeline.json, BENCH_impair.json and BENCH_serve.json in the
# repository root so the streaming vs. parallel perf trajectory — plus
# the resilience layer's overhead and the served path's disconnect
# resilience — are tracked across PRs.
#
#   tools/bench_pipeline.sh [--samples N] [--runs N]
#
# The pipeline benches default to 64 Mi samples and best-of-3 timed
# runs per mode (run-to-run variance lands in the JSON); pass --runs 5
# on a noisy host.  The serve bench runs a fixed open-loop load twice —
# a clean baseline and a pass with 10% of sessions dropped once
# mid-upload — so BENCH_serve.json carries the resume-path metrics
# (resumed sessions, replayed bytes, lost sessions, p99 vs baseline).
# BUILD_DIR overrides the build directory (default: build).
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
cmake --build "$BUILD_DIR" --target throughput_pipeline throughput_impair throughput_serve -j
"$BUILD_DIR/bench/throughput_pipeline" --json BENCH_pipeline.json "$@"
"$BUILD_DIR/bench/throughput_impair" --json BENCH_impair.json "$@"
"$BUILD_DIR/bench/throughput_serve" --devices 400 --rate 200 \
    --samples-per-capture 65536 --disconnect-rate 0.10 \
    --fail-on-lost --json BENCH_serve.json
