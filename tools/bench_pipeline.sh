#!/usr/bin/env sh
# Build and run the end-to-end pipeline throughput benchmarks, leaving
# BENCH_pipeline.json and BENCH_impair.json in the repository root so
# the streaming vs. parallel perf trajectory — and the resilience
# layer's overhead — are tracked across PRs.
#
#   tools/bench_pipeline.sh [--samples N]
#
# BUILD_DIR overrides the build directory (default: build).
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
cmake --build "$BUILD_DIR" --target throughput_pipeline throughput_impair -j
"$BUILD_DIR/bench/throughput_pipeline" --json BENCH_pipeline.json "$@"
"$BUILD_DIR/bench/throughput_impair" --json BENCH_impair.json "$@"
