#!/usr/bin/env sh
# Build and run the end-to-end pipeline throughput benchmark, leaving
# BENCH_pipeline.json in the repository root so the streaming vs.
# parallel perf trajectory is tracked across PRs.
#
#   tools/bench_pipeline.sh [--samples N]
#
# BUILD_DIR overrides the build directory (default: build).
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
cmake --build "$BUILD_DIR" --target throughput_pipeline -j
"$BUILD_DIR/bench/throughput_pipeline" --json BENCH_pipeline.json "$@"
